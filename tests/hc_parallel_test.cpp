// Fine-grained parallel BC-DFS correctness: the parallel variant must produce
// exactly the serial hop-constrained cycle sets under every thread count,
// spawn policy and state-restoration mode (same generator sweep the
// core_parallel suite uses for fine-Johnson).
#include <gtest/gtest.h>

#include <tuple>

#include "core/fine_hc_dfs.hpp"
#include "core/hc_dfs.hpp"
#include "graph/generators.hpp"
#include "support/prng.hpp"
#include "support/scheduler.hpp"

namespace parcycle {
namespace {

TemporalGraph test_graph(std::uint64_t seed) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 30;
  params.num_edges = 220;
  params.time_span = 1000;
  params.attachment = 0.6;
  params.seed = seed;
  return scale_free_temporal(params);
}

class FineHcTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int, bool>> {
 protected:
  ParallelOptions parallel_options() const {
    const auto [threads, policy, naive] = GetParam();
    ParallelOptions popts;
    popts.spawn_policy =
        policy == 0 ? SpawnPolicy::kAlways : SpawnPolicy::kAdaptive;
    popts.naive_state_restore = naive;
    return popts;
  }
  unsigned threads() const { return std::get<0>(GetParam()); }
};

TEST_P(FineHcTest, MatchesSerial) {
  const TemporalGraph g = test_graph(23);
  const Timestamp window = 200;
  for (const int hops : {3, 5}) {
    CollectingSink serial_sink;
    const auto serial = hc_windowed_cycles(g, window, hops, {}, &serial_sink);

    Scheduler sched(threads());
    CollectingSink sink;
    const auto fine = fine_hc_windowed_cycles(g, window, hops, sched, {},
                                              parallel_options(), &sink);
    EXPECT_EQ(fine.num_cycles, serial.num_cycles) << "hops=" << hops;
    EXPECT_EQ(sink.sorted_cycles(), serial_sink.sorted_cycles())
        << "hops=" << hops;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, FineHcTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0, 1),  // kAlways, kAdaptive
                       ::testing::Values(false, true)));

// The figure-4a adversary under a hop bound: every cycle hangs off one
// starting edge, so stolen tasks carry deep prefixes and the trail repair
// gets exercised hardest.
TEST(FineHc, Figure4aAdversary) {
  const Digraph base = figure4a_graph(12);
  const TemporalGraph g = with_uniform_timestamps(base, 100, 3);
  const Timestamp window = 1000;  // everything fits
  for (const int hops : {4, 8, 12}) {
    const auto serial = hc_windowed_cycles(g, window, hops);
    ASSERT_GE(serial.num_cycles, 1u) << "hops=" << hops;
    for (const unsigned threads : {2u, 4u, 8u}) {
      Scheduler sched(threads);
      ParallelOptions popts;
      popts.spawn_policy = SpawnPolicy::kAlways;  // maximal stealing pressure
      const auto fine =
          fine_hc_windowed_cycles(g, window, hops, sched, {}, popts);
      EXPECT_EQ(fine.num_cycles, serial.num_cycles)
          << "threads=" << threads << " hops=" << hops;
    }
  }
}

// Repeated stress with spawn-always to shake out copy-on-steal races.
TEST(FineHc, StealStress) {
  SplitMix64 seeds(0xbead);
  for (int trial = 0; trial < 5; ++trial) {
    const TemporalGraph g = test_graph(seeds.next());
    const auto serial = hc_windowed_cycles(g, 150, 4);
    Scheduler sched(8);
    ParallelOptions popts;
    popts.spawn_policy = SpawnPolicy::kAlways;
    const auto fine = fine_hc_windowed_cycles(g, 150, 4, sched, {}, popts);
    ASSERT_EQ(fine.num_cycles, serial.num_cycles) << "trial " << trial;
  }
}

TEST(FineHc, HopSweepAgreesWithSerial) {
  const TemporalGraph g = test_graph(77);
  Scheduler sched(4);
  for (const int hops : {1, 2, 3, 4, 6, 8}) {
    const auto serial = hc_windowed_cycles(g, 250, hops);
    const auto fine = fine_hc_windowed_cycles(g, 250, hops, sched);
    EXPECT_EQ(fine.num_cycles, serial.num_cycles) << "hops=" << hops;
  }
}

}  // namespace
}  // namespace parcycle
