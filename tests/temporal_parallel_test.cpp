// Parallel temporal enumeration: coarse and fine variants versus the serial
// algorithms, across thread counts, spawn policies and restore modes.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "support/prng.hpp"
#include "temporal/brute.hpp"
#include "temporal/temporal_johnson.hpp"
#include "temporal/temporal_read_tarjan.hpp"

namespace parcycle {
namespace {

TemporalGraph test_graph(std::uint64_t seed) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 30;
  params.num_edges = 250;
  params.time_span = 1000;
  params.attachment = 0.6;
  params.seed = seed;
  return scale_free_temporal(params);
}

class TemporalParallelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int, bool>> {
 protected:
  ParallelOptions parallel_options() const {
    const auto [threads, policy, naive] = GetParam();
    ParallelOptions popts;
    popts.spawn_policy =
        policy == 0 ? SpawnPolicy::kAlways : SpawnPolicy::kAdaptive;
    popts.naive_state_restore = naive;
    return popts;
  }
  unsigned threads() const { return std::get<0>(GetParam()); }
};

TEST_P(TemporalParallelTest, FineJohnsonMatchesBruteForce) {
  const TemporalGraph g = test_graph(101);
  const Timestamp window = 400;
  CollectingSink oracle_sink;
  const auto oracle = brute_temporal_cycles(g, window, {}, &oracle_sink);

  Scheduler sched(threads());
  CollectingSink sink;
  const auto fine = fine_temporal_johnson_cycles(g, window, sched, {},
                                                 parallel_options(), &sink);
  EXPECT_EQ(fine.num_cycles, oracle.num_cycles);
  EXPECT_EQ(sink.sorted_cycles(), oracle_sink.sorted_cycles());
}

TEST_P(TemporalParallelTest, FineReadTarjanMatchesBruteForce) {
  const TemporalGraph g = test_graph(103);
  const Timestamp window = 400;
  CollectingSink oracle_sink;
  const auto oracle = brute_temporal_cycles(g, window, {}, &oracle_sink);

  Scheduler sched(threads());
  CollectingSink sink;
  const auto fine = fine_temporal_read_tarjan_cycles(
      g, window, sched, {}, parallel_options(), &sink);
  EXPECT_EQ(fine.num_cycles, oracle.num_cycles);
  EXPECT_EQ(sink.sorted_cycles(), oracle_sink.sorted_cycles());
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, TemporalParallelTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0, 1),
                       ::testing::Values(false, true)));

class TemporalCoarseTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TemporalCoarseTest, CoarseVariantsMatchSerial) {
  const unsigned threads = GetParam();
  const TemporalGraph g = test_graph(107);
  const Timestamp window = 350;
  const auto serial = temporal_johnson_cycles(g, window);

  Scheduler sched(threads);
  const auto cj = coarse_temporal_johnson_cycles(g, window, sched);
  const auto cr = coarse_temporal_read_tarjan_cycles(g, window, sched);
  EXPECT_EQ(cj.num_cycles, serial.num_cycles);
  EXPECT_EQ(cr.num_cycles, serial.num_cycles);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TemporalCoarseTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(TemporalParallel, StealStressAcrossSeeds) {
  SplitMix64 seeds(0x600d);
  for (int trial = 0; trial < 4; ++trial) {
    const TemporalGraph g = test_graph(seeds.next());
    const auto oracle = brute_temporal_cycles(g, 300);
    Scheduler sched(8);
    ParallelOptions popts;
    popts.spawn_policy = SpawnPolicy::kAlways;
    const auto fj = fine_temporal_johnson_cycles(g, 300, sched, {}, popts);
    const auto fr = fine_temporal_read_tarjan_cycles(g, 300, sched, {}, popts);
    ASSERT_EQ(fj.num_cycles, oracle.num_cycles) << "trial " << trial;
    ASSERT_EQ(fr.num_cycles, oracle.num_cycles) << "trial " << trial;
  }
}

TEST(TemporalParallel, BundlingOnOffAgreeInParallel) {
  const TemporalGraph g = test_graph(113);
  Scheduler sched(4);
  EnumOptions bundled;
  bundled.path_bundling = true;
  EnumOptions unbundled;
  unbundled.path_bundling = false;
  const auto a = fine_temporal_johnson_cycles(g, 300, sched, bundled);
  const auto b = fine_temporal_johnson_cycles(g, 300, sched, unbundled);
  EXPECT_EQ(a.num_cycles, b.num_cycles);
}

TEST(TemporalParallel, FineReadTarjanIsWorkEfficient) {
  const TemporalGraph g = test_graph(117);
  const auto serial = temporal_read_tarjan_cycles(g, 300);
  Scheduler sched(4);
  ParallelOptions popts;
  popts.spawn_policy = SpawnPolicy::kAlways;
  const auto fine = fine_temporal_read_tarjan_cycles(g, 300, sched, {}, popts);
  EXPECT_EQ(fine.num_cycles, serial.num_cycles);
  EXPECT_EQ(fine.work.edges_visited, serial.work.edges_visited);
}

TEST(TemporalParallel, WindowSweep) {
  const TemporalGraph g = test_graph(119);
  Scheduler sched(4);
  for (const Timestamp window : {0, 100, 250, 500}) {
    const auto serial = temporal_johnson_cycles(g, window);
    const auto fj = fine_temporal_johnson_cycles(g, window, sched);
    const auto fr = fine_temporal_read_tarjan_cycles(g, window, sched);
    EXPECT_EQ(fj.num_cycles, serial.num_cycles) << "window " << window;
    EXPECT_EQ(fr.num_cycles, serial.num_cycles) << "window " << window;
  }
}

}  // namespace
}  // namespace parcycle
