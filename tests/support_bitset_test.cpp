#include "support/dynamic_bitset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/prng.hpp"

namespace parcycle {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.any());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(bits.test(i));
  }
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset bits(130);  // spans three words
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(65));
  EXPECT_EQ(bits.count(), 4u);
  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
}

TEST(DynamicBitset, TestAndSetReportsPriorState) {
  DynamicBitset bits(10);
  EXPECT_TRUE(bits.test_and_set(3));
  EXPECT_FALSE(bits.test_and_set(3));
  EXPECT_TRUE(bits.test(3));
}

TEST(DynamicBitset, ClearZeroesEverything) {
  DynamicBitset bits(200);
  for (std::size_t i = 0; i < 200; i += 3) {
    bits.set(i);
  }
  bits.clear();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(DynamicBitset, IntersectionAndUnion) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.set(1);
  a.set(50);
  a.set(99);
  b.set(50);
  b.set(99);
  b.set(2);

  DynamicBitset inter = a;
  inter &= b;
  EXPECT_FALSE(inter.test(1));
  EXPECT_FALSE(inter.test(2));
  EXPECT_TRUE(inter.test(50));
  EXPECT_TRUE(inter.test(99));
  EXPECT_EQ(inter.count(), 2u);

  DynamicBitset uni = a;
  uni |= b;
  EXPECT_EQ(uni.count(), 4u);
}

TEST(DynamicBitset, ForEachSetVisitsAscending) {
  DynamicBitset bits(300);
  const std::set<std::size_t> expected = {0, 5, 63, 64, 65, 128, 299};
  for (const auto i : expected) {
    bits.set(i);
  }
  std::vector<std::size_t> seen;
  bits.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<std::size_t>(expected.begin(), expected.end()));
}

TEST(DynamicBitset, RandomisedAgainstStdSet) {
  Xoshiro256 rng(7);
  DynamicBitset bits(512);
  std::set<std::size_t> model;
  for (int step = 0; step < 5000; ++step) {
    const std::size_t pos = rng.bounded(512);
    if (rng.uniform() < 0.5) {
      bits.set(pos);
      model.insert(pos);
    } else {
      bits.reset(pos);
      model.erase(pos);
    }
  }
  EXPECT_EQ(bits.count(), model.size());
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(bits.test(i), model.count(i) > 0) << "bit " << i;
  }
}

TEST(DynamicBitset, ResizeResets) {
  DynamicBitset bits(10);
  bits.set(5);
  bits.resize(20);
  EXPECT_EQ(bits.size(), 20u);
  EXPECT_EQ(bits.count(), 0u);
}

TEST(DynamicBitset, EqualityComparesContents) {
  DynamicBitset a(64);
  DynamicBitset b(64);
  EXPECT_EQ(a, b);
  a.set(13);
  EXPECT_FALSE(a == b);
  b.set(13);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace parcycle
