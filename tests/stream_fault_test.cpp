// Robustness under injected faults: the deterministic FaultInjector itself,
// slab-allocation failure containment, sink isolation (throw / delay /
// quarantine), the overload ladder's climb-and-recover cycle, cooperative
// search budgets, and snapshot generation rotation with corrupt-latest
// fallback. Every test arms a seeded injector, so the whole suite is
// reproducible run-to-run and safe under --repeat until-fail stress.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cycle_types.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "robust/fault_injection.hpp"
#include "robust/sink_guard.hpp"
#include "robust/snapshot_rotation.hpp"
#include "stream/engine.hpp"
#include "support/scheduler.hpp"

namespace parcycle {
namespace {

TemporalGraph test_graph() {
  ScaleFreeTemporalParams params;
  params.num_vertices = 50;
  params.num_edges = 400;
  params.time_span = 1500;
  params.attachment = 0.8;
  params.burstiness = 0.5;
  params.allow_self_loops = true;
  params.seed = 23;
  return scale_free_temporal(params);
}

constexpr Timestamp kWindow = 150;

StreamOptions engine_options() {
  StreamOptions options;
  options.window = kWindow;
  options.batch_size = 32;
  options.hot_frontier_threshold = SIZE_MAX;  // serial searches by default
  return options;
}

// Installs the injector for the test's lifetime and guarantees uninstall on
// every exit path — a leaked global injector would poison later tests.
struct ScopedInjector {
  explicit ScopedInjector(std::uint64_t seed = 7) : injector(seed) {}
  ~ScopedInjector() { FaultInjector::install(nullptr); }

  void arm(FaultPoint point, FaultRule rule) {
    injector.arm(point, rule);
    FaultInjector::install(&injector);
  }
  bool arm_spec(const std::string& spec, std::string* error = nullptr) {
    const bool ok = injector.arm_from_spec(spec, error);
    if (ok) {
      FaultInjector::install(&injector);
    }
    return ok;
  }

  FaultInjector injector;
};

StreamStats run_clean_reference(const StreamOptions& options) {
  const TemporalGraph graph = test_graph();
  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    stats = engine.stats();
  });
  return stats;
}

// ---------------------------------------------------------------------------
// FaultInjector mechanics
// ---------------------------------------------------------------------------

TEST(FaultInjector, EveryAfterLimitArithmetic) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.every = 2;
  rule.after = 3;
  rule.limit = 2;
  injector.arm(FaultPoint::kSinkThrow, rule);
  std::vector<std::size_t> fired_at;
  for (std::size_t hit = 0; hit < 12; ++hit) {
    if (injector.fire(FaultPoint::kSinkThrow)) {
      fired_at.push_back(hit);
    }
  }
  // Skip hits 0..2, then every 2nd, capped at 2 firings: hits 3 and 5.
  EXPECT_EQ(fired_at, (std::vector<std::size_t>{3, 5}));
  EXPECT_EQ(injector.hits(FaultPoint::kSinkThrow), 12u);
  EXPECT_EQ(injector.fired(FaultPoint::kSinkThrow), 2u);
  // Untouched points never fire and cost only their hit count.
  EXPECT_FALSE(injector.fire(FaultPoint::kSlabGrow));
}

TEST(FaultInjector, ParamIsDeliveredOnFiring) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.every = 1;
  rule.param = 4242;
  injector.arm(FaultPoint::kSinkDelay, rule);
  std::uint64_t param = 0;
  ASSERT_TRUE(injector.fire(FaultPoint::kSinkDelay, &param));
  EXPECT_EQ(param, 4242u);
}

TEST(FaultInjector, ProbabilisticGateIsSeedDeterministic) {
  const auto fired_pattern = [](std::uint64_t seed) {
    FaultInjector injector(seed);
    FaultRule rule;
    rule.every = 1;
    rule.prob_mille = 500;
    injector.arm(FaultPoint::kFeedStall, rule);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(injector.fire(FaultPoint::kFeedStall));
    }
    return pattern;
  };
  const auto a = fired_pattern(99);
  const auto b = fired_pattern(99);
  EXPECT_EQ(a, b);  // same seed, same decisions — the chaos-CI contract
  const auto fired = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, a.size());
}

TEST(FaultInjector, SpecParsing) {
  FaultInjector injector(1);
  std::string error;
  ASSERT_TRUE(injector.arm_from_spec(
      "sink_throw:every=2,limit=3;slab_grow:after=1,every=1,param=9", &error))
      << error;
  std::vector<std::size_t> fired_at;
  for (std::size_t hit = 0; hit < 7; ++hit) {
    if (injector.fire(FaultPoint::kSinkThrow)) {
      fired_at.push_back(hit);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_FALSE(injector.fire(FaultPoint::kSlabGrow));  // after=1 skips hit 0
  std::uint64_t param = 0;
  EXPECT_TRUE(injector.fire(FaultPoint::kSlabGrow, &param));
  EXPECT_EQ(param, 9u);

  EXPECT_FALSE(injector.arm_from_spec("no_such_point:every=1", &error));
  EXPECT_NE(error.find("no_such_point"), std::string::npos);
  EXPECT_FALSE(injector.arm_from_spec("sink_throw:bogus=1", &error));
  EXPECT_FALSE(injector.arm_from_spec("sink_throw", &error));
  EXPECT_FALSE(injector.arm_from_spec("sink_throw:every=x", &error));
}

// ---------------------------------------------------------------------------
// Slab allocation failure: one batch degrades, the engine stays live
// ---------------------------------------------------------------------------

TEST(StreamFault, SlabAllocFailureIsContained) {
  const StreamOptions options = engine_options();
  const StreamStats reference = run_clean_reference(options);
  ASSERT_GT(reference.cycles_found, 0u);

  ScopedInjector fault;
  FaultRule rule;
  rule.every = 1;
  rule.limit = 1;  // exactly one bad_alloc, at the very first slab growth
  fault.arm(FaultPoint::kSlabGrow, rule);

  const TemporalGraph graph = test_graph();
  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    stats = engine.stats();
  });
  // The first batch's fan-out died on the injected bad_alloc; the engine
  // caught it, counted it, and every later batch ran normally.
  EXPECT_EQ(stats.search_errors, 1u);
  EXPECT_EQ(stats.batches, reference.batches);
  EXPECT_EQ(stats.edges_ingested, reference.edges_ingested);
  EXPECT_LE(stats.cycles_found, reference.cycles_found);
  EXPECT_EQ(fault.injector.fired(FaultPoint::kSlabGrow), 1u);
}

// ---------------------------------------------------------------------------
// Sink isolation
// ---------------------------------------------------------------------------

TEST(StreamFault, ThrowingSinkIsQuarantinedWithoutLosingCycleTotals) {
  StreamOptions options = engine_options();
  const StreamStats reference = run_clean_reference(options);
  ASSERT_GT(reference.cycles_found, 4u);  // need cycles beyond the quarantine

  ScopedInjector fault;
  FaultRule rule;
  rule.every = 1;  // every delivery throws
  fault.arm(FaultPoint::kSinkThrow, rule);

  options.guard_sinks = true;
  options.sink_guard.quarantine_after = 4;
  const TemporalGraph graph = test_graph();
  CountingSink downstream;
  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &downstream);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    stats = engine.stats();
  });
  // Cycle accounting is search-side: a poisonous sink cannot dent it.
  EXPECT_EQ(stats.cycles_found, reference.cycles_found);
  EXPECT_EQ(downstream.count(), 0u);
  EXPECT_EQ(stats.sink_delivered, 0u);
  EXPECT_EQ(stats.sink_errors, 4u);  // exactly quarantine_after, then cut off
  EXPECT_EQ(stats.sink_quarantined, 1u);
  EXPECT_EQ(stats.sink_errors + stats.sink_dropped, stats.cycles_found);
}

TEST(StreamFault, SlowSinkNeverStallsTheEngine) {
  StreamOptions options = engine_options();
  const StreamStats reference = run_clean_reference(options);

  ScopedInjector fault;
  FaultRule rule;
  rule.every = 1;
  rule.param = 1000;  // 1ms per delivery vs a 100µs hand-off timeout
  fault.arm(FaultPoint::kSinkDelay, rule);

  options.guard_sinks = true;
  options.sink_guard.queue_capacity = 2;
  options.sink_guard.handoff_timeout_us = 100;
  const TemporalGraph graph = test_graph();
  CountingSink downstream;
  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &downstream);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    stats = engine.stats();
  });
  // Deliveries are best-effort (timeout drops are expected and counted); the
  // enumeration totals are not.
  EXPECT_EQ(stats.cycles_found, reference.cycles_found);
  EXPECT_EQ(stats.sink_quarantined, 0u);
  EXPECT_GT(stats.sink_delivered + stats.sink_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Overload ladder
// ---------------------------------------------------------------------------

TEST(StreamFault, OverloadLadderClimbsShedsAndRecovers) {
  const TemporalGraph graph = test_graph();
  const auto edges = graph.edges_by_time();
  StreamOptions options = engine_options();
  options.batch_size = 64;
  options.overload_high_watermark = 8;  // a full batch = 8x the watermark
  options.overload_recover_batches = 2;

  // Declared before the pool: ring reads require a quiescent recorder, so the
  // kOverloadShift instants are only counted after with_pool joins the workers.
  TraceRecorder recorder(2);
  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    sched.set_tracer(&recorder);
    StreamEngine engine(options, sched, nullptr);
    // Batch 1 fills and fires: occupancy 64 = 8x high -> the ladder jumps
    // straight to the top (clamped), but THIS batch still searches fully.
    for (std::size_t i = 0; i < 64; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    EXPECT_EQ(engine.overload_level(), OverloadLevel::kShed);
    EXPECT_EQ(engine.stats().edges_ingested, 64u);

    // While shedding, arrivals are dropped before they can buffer.
    for (std::size_t i = 64; i < 100; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    EXPECT_EQ(engine.stats().edges_shed, 36u);
    EXPECT_EQ(engine.stats().edges_ingested, 64u);

    // Hysteretic recovery: each calm (empty) flush counts toward the streak;
    // every `overload_recover_batches` consecutive calm batches step down one
    // rung. 4 rungs x 2 batches = 8 flushes back to normal.
    for (int i = 0; i < 8; ++i) {
      engine.flush();
    }
    EXPECT_EQ(engine.overload_level(), OverloadLevel::kNormal);

    // Recovered: the next batch ingests and searches again (and, at 8x the
    // watermark, deterministically re-climbs — the decision is pure).
    for (std::size_t i = 100; i < 164; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    stats = engine.stats();
  });
  EXPECT_EQ(stats.edges_ingested, 128u);
  EXPECT_EQ(stats.edges_shed, 36u);
  EXPECT_EQ(stats.work.edges_shed, 36u);  // mirrored for bench/CLI columns
  // Shifts: up(1) + four down-steps + up(1) again.
  EXPECT_EQ(stats.overload_shifts, 6u);
  EXPECT_EQ(stats.overload_level, OverloadLevel::kShed);

  // Every shift left a trace instant on some worker ring.
  std::uint64_t shift_events = 0;
  for (unsigned w = 0; w < recorder.num_workers(); ++w) {
    for (const TraceEvent& event : recorder.events(w)) {
      if (event.name == TraceName::kOverloadShift) {
        shift_events += 1;
      }
    }
  }
  EXPECT_EQ(shift_events, stats.overload_shifts);
}

TEST(StreamFault, TightenedBudgetsTruncateSearches) {
  const TemporalGraph graph = test_graph();
  const auto edges = graph.edges_by_time();
  StreamOptions options = engine_options();
  options.batch_size = 64;
  // occupancy/high = 64/21 = 3 rungs: kTightenBudgets exactly, so the batch
  // runs with the degraded budget (and forced prune + serial).
  options.overload_high_watermark = 21;
  options.degraded_budget = SearchBudget{/*wall_ns=*/0, /*edge_visits=*/1};

  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (std::size_t i = 0; i < 64; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    stats = engine.stats();
  });
  EXPECT_EQ(stats.overload_level, OverloadLevel::kTightenBudgets);
  EXPECT_GT(stats.work.searches_truncated, 0u);
}

// ---------------------------------------------------------------------------
// Cooperative search budgets
// ---------------------------------------------------------------------------

TEST(StreamFault, SerialBudgetTruncationIsDeterministic) {
  StreamOptions options = engine_options();
  const StreamStats reference = run_clean_reference(options);
  ASSERT_GT(reference.cycles_found, 0u);

  options.search_budget = SearchBudget{/*wall_ns=*/0, /*edge_visits=*/5};
  const auto run_once = [&]() {
    const TemporalGraph graph = test_graph();
    StreamStats stats;
    Scheduler::with_pool(2, [&](Scheduler& sched) {
      StreamEngine engine(options, sched, nullptr);
      for (const auto& e : graph.edges_by_time()) {
        engine.push(e.src, e.dst, e.ts);
      }
      engine.flush();
      stats = engine.stats();
    });
    return stats;
  };
  const StreamStats a = run_once();
  const StreamStats b = run_once();
  // Edge-visit budgets in serial searches are schedule-independent: the
  // truncation points, and therefore every counter, replay exactly.
  EXPECT_GT(a.work.searches_truncated, 0u);
  EXPECT_EQ(a.work.searches_truncated, b.work.searches_truncated);
  EXPECT_EQ(a.cycles_found, b.cycles_found);
  EXPECT_EQ(a.work.edges_visited, b.work.edges_visited);
  // A truncated search is a lower bound, never an over-count.
  EXPECT_LE(a.cycles_found, reference.cycles_found);
}

TEST(StreamFault, FineGrainedBudgetTruncatesWithoutOvercounting) {
  StreamOptions options = engine_options();
  const StreamStats reference = run_clean_reference(options);

  options.hot_frontier_threshold = 0;  // escalate everything
  options.search_budget = SearchBudget{/*wall_ns=*/0, /*edge_visits=*/3};
  const TemporalGraph graph = test_graph();
  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    stats = engine.stats();
  });
  // The shared atomic budget makes WHICH branch gets cut schedule-dependent,
  // but the invariants are not: truncation happened, was counted, and the
  // partial result never exceeds the exact one.
  EXPECT_GT(stats.work.searches_truncated, 0u);
  EXPECT_LE(stats.cycles_found, reference.cycles_found);
}

// ---------------------------------------------------------------------------
// Snapshot rotation: corrupt-latest fallback, untouched-on-failure restore
// ---------------------------------------------------------------------------

std::string rotation_base() {
  return testing::TempDir() + "parcycle_fault_rotation_" +
         std::to_string(::getpid()) + ".snap";
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(byte ^ 0x40));
}

void cleanup_rotation(const std::string& base) {
  std::remove(base.c_str());
  std::remove((base + ".1").c_str());
  std::remove((base + ".2").c_str());
  std::remove((base + ".plain").c_str());
}

TEST(StreamFault, RotationFallsBackToPreviousGeneration) {
  const TemporalGraph graph = test_graph();
  const auto edges = graph.edges_by_time();
  const StreamOptions options = engine_options();
  const std::string base = rotation_base();
  cleanup_rotation(base);

  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (std::size_t i = 0; i < 100; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    const RotatedSnapshotInfo first = save_snapshot_rotated(engine, base);
    EXPECT_EQ(first.generation, 1);
    for (std::size_t i = 100; i < 200; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    const RotatedSnapshotInfo second = save_snapshot_rotated(engine, base);
    EXPECT_EQ(second.generation, 2);
  });

  // Corrupt the pointed-at (latest) generation: restore must fall back to
  // generation 1 and resume from the older cursor.
  flip_byte(base + ".2", 100);
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    const RotatedSnapshotInfo restored = restore_snapshot_rotated(engine, base);
    EXPECT_EQ(restored.generation, 1);
    EXPECT_EQ(engine.edges_pushed(), 100u);
  });
  cleanup_rotation(base);
}

TEST(StreamFault, FailedRestoreLeavesTheEngineRetryable) {
  const TemporalGraph graph = test_graph();
  const auto edges = graph.edges_by_time();
  const StreamOptions options = engine_options();
  const std::string base = rotation_base() + ".retry";
  cleanup_rotation(base);

  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (std::size_t i = 0; i < 150; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    save_snapshot_rotated(engine, base);
    save_snapshot_rotated(engine, base);
    engine.save_snapshot_file(base + ".plain");
  });
  flip_byte(base + ".1", 80);
  flip_byte(base + ".2", 80);

  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    // Both generations corrupt: rotation fails after trying each...
    EXPECT_THROW(restore_snapshot_rotated(engine, base), std::runtime_error);
    // ...but restore is parse-then-commit, so the SAME engine is still fresh
    // and restores cleanly from an intact file.
    engine.restore_snapshot_file(base + ".plain");
    EXPECT_EQ(engine.edges_pushed(), 150u);
  });
  cleanup_rotation(base);
}

TEST(StreamFault, InjectedSnapshotCorruptionIsSurvivedByRotation) {
  const TemporalGraph graph = test_graph();
  const auto edges = graph.edges_by_time();
  const StreamOptions options = engine_options();
  const std::string base = rotation_base() + ".inject";
  cleanup_rotation(base);

  ScopedInjector fault;
  FaultRule rule;
  rule.every = 1;
  rule.after = 1;  // first save clean, second save corrupted as written
  rule.param = 64;
  fault.arm(FaultPoint::kSnapshotBitFlip, rule);

  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (std::size_t i = 0; i < 100; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    save_snapshot_rotated(engine, base);  // generation 1, intact
    for (std::size_t i = 100; i < 200; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    save_snapshot_rotated(engine, base);  // generation 2, bit-flipped
  });
  EXPECT_EQ(fault.injector.fired(FaultPoint::kSnapshotBitFlip), 1u);

  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    const RotatedSnapshotInfo restored = restore_snapshot_rotated(engine, base);
    EXPECT_EQ(restored.generation, 1);
    EXPECT_EQ(engine.edges_pushed(), 100u);
  });
  cleanup_rotation(base);
}

}  // namespace
}  // namespace parcycle
