#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace parcycle {
namespace {

TEST(Generators, CompleteDigraph) {
  const Digraph g = complete_digraph(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 30u);
  for (VertexId u = 0; u < 6; ++u) {
    EXPECT_EQ(g.out_degree(u), 5u);
    EXPECT_FALSE(g.has_edge(u, u));
  }
}

TEST(Generators, DirectedRing) {
  const Digraph g = directed_ring(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_TRUE(g.has_edge(v, (v + 1) % 7));
  }
}

TEST(Generators, RandomDagIsAcyclicByConstruction) {
  const Digraph g = random_dag(30, 0.4, 7);
  for (VertexId u = 0; u < 30; ++u) {
    for (const VertexId v : g.out_neighbors(u)) {
      EXPECT_LT(u, v);
    }
  }
}

TEST(Generators, Figure4aStructure) {
  const VertexId n = 8;
  const Digraph g = figure4a_graph(n);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.out_degree(0), 1u);  // only v0 -> v1: all cycles share it
  for (VertexId i = 1; i < n; ++i) {
    EXPECT_TRUE(g.has_edge(i, 0));
    for (VertexId j = i + 1; j < n; ++j) {
      EXPECT_TRUE(g.has_edge(i, j));
    }
  }
}

TEST(Generators, JohnsonAdversarialShape) {
  const VertexId m = 4;
  const VertexId k = 6;
  const Digraph g = johnson_adversarial_graph(m, k);
  EXPECT_EQ(g.num_vertices(), 3u + 2 * m + k);
  // Both chains exist and feed the dead-end chain.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 0));
  const VertexId b0 = 3 + 2 * m;
  for (VertexId i = 0; i < m; ++i) {
    EXPECT_TRUE(g.has_edge(3 + i, b0));          // w chain into b
    EXPECT_TRUE(g.has_edge(3 + m + i, b0));      // u chain into b
  }
  EXPECT_EQ(g.out_degree(b0 + k - 1), 0u);  // dead end
}

TEST(Generators, ErdosRenyiHasRequestedEdges) {
  const Digraph g = erdos_renyi(50, 200, 11);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
  for (VertexId u = 0; u < 50; ++u) {
    EXPECT_FALSE(g.has_edge(u, u));
  }
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  const Digraph a = erdos_renyi(30, 100, 5);
  const Digraph b = erdos_renyi(30, 100, 5);
  const Digraph c = erdos_renyi(30, 100, 6);
  EXPECT_EQ(a.edge_list(), b.edge_list());
  EXPECT_NE(a.edge_list(), c.edge_list());
}

TEST(Generators, ScaleFreeTemporalBasicProperties) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 500;
  params.num_edges = 5000;
  params.time_span = 100000;
  params.seed = 3;
  const TemporalGraph g = scale_free_temporal(params);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_EQ(g.num_edges(), 5000u);
  EXPECT_GE(g.min_timestamp(), 0);
  EXPECT_LT(g.max_timestamp(), 100000);
  for (const auto& e : g.edges_by_time()) {
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(Generators, ScaleFreeTemporalIsSkewed) {
  // Preferential attachment must concentrate degree: the busiest vertex
  // should hold far more than the average share of edges.
  ScaleFreeTemporalParams params;
  params.num_vertices = 1000;
  params.num_edges = 20000;
  params.attachment = 0.9;
  params.seed = 17;
  const TemporalGraph g = scale_free_temporal(params);
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.out_edges(v).size());
  }
  const double average = 20000.0 / 1000.0;
  EXPECT_GT(static_cast<double>(max_degree), 10.0 * average);
}

TEST(Generators, ScaleFreeTemporalDeterministicPerSeed) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 100;
  params.num_edges = 1000;
  params.seed = 8;
  const TemporalGraph a = scale_free_temporal(params);
  const TemporalGraph b = scale_free_temporal(params);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const auto ea = a.edges_by_time();
  const auto eb = b.edges_by_time();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].src, eb[i].src);
    EXPECT_EQ(ea[i].dst, eb[i].dst);
    EXPECT_EQ(ea[i].ts, eb[i].ts);
  }
}

TEST(Generators, UniformTemporalBounds) {
  const TemporalGraph g = uniform_temporal(100, 1000, 5000, 21);
  EXPECT_EQ(g.num_edges(), 1000u);
  EXPECT_GE(g.min_timestamp(), 0);
  EXPECT_LT(g.max_timestamp(), 5000);
}

TEST(Generators, WithUniformTimestampsPreservesStructure) {
  const Digraph base = directed_ring(10);
  const TemporalGraph g = with_uniform_timestamps(base, 1000, 4);
  EXPECT_EQ(g.num_edges(), 10u);
  const Digraph projected = g.static_projection();
  EXPECT_EQ(projected.edge_list(), base.edge_list());
}

TEST(Generators, Figure6aHasTwoCyclesWorth) {
  const Digraph g = figure6a_graph();
  EXPECT_EQ(g.num_vertices(), 12u);
  // The two cycles drawn in the figure.
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_TRUE(g.has_edge(9, 0));
}

}  // namespace
}  // namespace parcycle
