// Temporal cycle enumeration: the brute-force oracle versus closing-times
// Johnson (bundled and unbundled), Read-Tarjan, and the 2SCENT baseline.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/prng.hpp"
#include "temporal/brute.hpp"
#include "temporal/temporal_johnson.hpp"
#include "temporal/temporal_read_tarjan.hpp"
#include "temporal/two_scent.hpp"

namespace parcycle {
namespace {

void expect_all_equal(const TemporalGraph& g, Timestamp window,
                      EnumOptions options = {}) {
  CollectingSink brute_sink;
  const auto brute = brute_temporal_cycles(g, window, options, &brute_sink);

  EnumOptions bundled = options;
  bundled.path_bundling = true;
  EnumOptions unbundled = options;
  unbundled.path_bundling = false;

  CollectingSink tj_sink;
  const auto tj = temporal_johnson_cycles(g, window, bundled, &tj_sink);
  EXPECT_EQ(tj.num_cycles, brute.num_cycles) << "bundled johnson";
  EXPECT_EQ(tj_sink.sorted_cycles(), brute_sink.sorted_cycles());

  const auto tj_plain = temporal_johnson_cycles(g, window, unbundled);
  EXPECT_EQ(tj_plain.num_cycles, brute.num_cycles) << "unbundled johnson";

  CollectingSink rt_sink;
  const auto rt = temporal_read_tarjan_cycles(g, window, options, &rt_sink);
  EXPECT_EQ(rt.num_cycles, brute.num_cycles) << "read-tarjan";
  EXPECT_EQ(rt_sink.sorted_cycles(), brute_sink.sorted_cycles());

  const auto ts = two_scent_cycles(g, window, options);
  EXPECT_EQ(ts.num_cycles, brute.num_cycles) << "2scent";
}

TEST(TemporalCycles, Figure2TemporalSemantics) {
  // The paper's Figure 2: the [2:7] window's simple cycle is also a temporal
  // cycle; of the two simple cycles in [10:15] only one is temporal.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 2, 5);
  builder.add_edge(2, 0, 7);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 0, 12);
  builder.add_edge(1, 3, 13);
  builder.add_edge(3, 0, 15);
  const TemporalGraph g = builder.build_temporal();
  // Temporal cycles with window 5: (2,5,7), (10,12), (10,13,15), and the
  // rotation (5,7,10) — a temporal cycle is anchored at its first edge, so
  // each rotation of a vertex cycle with increasing timestamps counts.
  EXPECT_EQ(temporal_johnson_cycles(g, 5).num_cycles, 4u);
  EXPECT_EQ(brute_temporal_cycles(g, 5).num_cycles, 4u);
  // Window 2: only (10,12).
  EXPECT_EQ(temporal_johnson_cycles(g, 2).num_cycles, 1u);
}

TEST(TemporalCycles, StrictIncreaseRequired) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 0, 10);
  const TemporalGraph g = builder.build_temporal();
  EXPECT_EQ(temporal_johnson_cycles(g, 100).num_cycles, 0u);
  EXPECT_EQ(temporal_read_tarjan_cycles(g, 100).num_cycles, 0u);
  EXPECT_EQ(brute_temporal_cycles(g, 100).num_cycles, 0u);
}

TEST(TemporalCycles, ParallelEdgesMultiplyInstances) {
  // Two choices for the middle hop and two closings: 2 * 2 = 4 temporal
  // cycles sharing one vertex sequence — the path-bundling showcase.
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 20);
  builder.add_edge(1, 2, 25);
  builder.add_edge(2, 0, 30);
  builder.add_edge(2, 0, 35);
  const TemporalGraph g = builder.build_temporal();
  EXPECT_EQ(brute_temporal_cycles(g, 100).num_cycles, 4u);
  EXPECT_EQ(temporal_johnson_cycles(g, 100).num_cycles, 4u);
  // Bundling walks the sequence once: its edge visits must be strictly fewer
  // than the unbundled search's.
  EnumOptions unbundled;
  unbundled.path_bundling = false;
  const auto bundled_work = temporal_johnson_cycles(g, 100).work;
  const auto plain_work = temporal_johnson_cycles(g, 100, unbundled).work;
  EXPECT_LT(bundled_work.vertices_visited, plain_work.vertices_visited);
}

TEST(TemporalCycles, BundleExpansionMatchesCounts) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1);
  builder.add_edge(1, 2, 2);
  builder.add_edge(1, 2, 3);
  builder.add_edge(1, 2, 4);
  builder.add_edge(2, 3, 5);
  builder.add_edge(2, 3, 6);
  builder.add_edge(3, 0, 7);
  builder.add_edge(3, 0, 8);
  const TemporalGraph g = builder.build_temporal();
  CollectingSink sink;
  const auto result = temporal_johnson_cycles(g, 100, {}, &sink);
  EXPECT_EQ(result.num_cycles, 3u * 2u * 2u);
  EXPECT_EQ(sink.size(), result.num_cycles);
  // Each expanded instance is distinct.
  const auto cycles = sink.sorted_cycles();
  for (std::size_t i = 1; i < cycles.size(); ++i) {
    EXPECT_FALSE(cycles[i - 1] == cycles[i]);
  }
}

TEST(TemporalCycles, SelfLoops) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0, 5);
  builder.add_edge(0, 1, 6);
  builder.add_edge(1, 0, 7);
  const TemporalGraph g = builder.build_temporal();
  EXPECT_EQ(temporal_johnson_cycles(g, 10).num_cycles, 2u);
  EXPECT_EQ(temporal_read_tarjan_cycles(g, 10).num_cycles, 2u);
  EXPECT_EQ(two_scent_cycles(g, 10).num_cycles, 2u);
}

class TemporalRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TemporalRandomTest, AllAlgorithmsMatchBruteForce) {
  const auto [salt, window_divisor] = GetParam();
  SplitMix64 seeds(0x7e3a0000u + static_cast<std::uint64_t>(salt));
  const TemporalGraph g = uniform_temporal(14, 90, 1000, seeds.next());
  expect_all_equal(g, 1000 / window_divisor);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, TemporalRandomTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1, 2, 4)));

TEST(TemporalCycles, ScaleFreeAgreement) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 40;
  params.num_edges = 300;
  params.time_span = 1000;
  params.seed = 12;
  const TemporalGraph g = scale_free_temporal(params);
  expect_all_equal(g, 300);
}

TEST(TemporalCycles, CycleUnionOnOffAgree) {
  SplitMix64 seeds(0xf00d);
  for (int trial = 0; trial < 5; ++trial) {
    const TemporalGraph g = uniform_temporal(16, 100, 600, seeds.next());
    EnumOptions with_union;
    with_union.use_cycle_union = true;
    EnumOptions without_union;
    without_union.use_cycle_union = false;
    const auto a = temporal_johnson_cycles(g, 200, with_union);
    const auto b = temporal_johnson_cycles(g, 200, without_union);
    EXPECT_EQ(a.num_cycles, b.num_cycles) << "trial " << trial;
    EXPECT_LE(a.work.edges_visited, b.work.edges_visited);
    const auto c = temporal_read_tarjan_cycles(g, 200, with_union);
    const auto d = temporal_read_tarjan_cycles(g, 200, without_union);
    EXPECT_EQ(c.num_cycles, a.num_cycles);
    EXPECT_EQ(d.num_cycles, a.num_cycles);
  }
}

TEST(TemporalCycles, LengthConstraintsMatchBruteForce) {
  SplitMix64 seeds(0xbeef);
  for (const int max_len : {2, 3, 5}) {
    EnumOptions options;
    options.max_cycle_length = max_len;
    for (int trial = 0; trial < 4; ++trial) {
      const TemporalGraph g = uniform_temporal(12, 70, 400, seeds.next());
      const auto brute = brute_temporal_cycles(g, 200, options);
      const auto tj = temporal_johnson_cycles(g, 200, options);
      const auto rt = temporal_read_tarjan_cycles(g, 200, options);
      EXPECT_EQ(tj.num_cycles, brute.num_cycles)
          << "len=" << max_len << " trial=" << trial;
      EXPECT_EQ(rt.num_cycles, brute.num_cycles)
          << "len=" << max_len << " trial=" << trial;
    }
  }
}

TEST(TwoScent, SeedsCoverExactlyTheCycleBearingStarts) {
  SplitMix64 seeds_rng(0xabc);
  const TemporalGraph g = uniform_temporal(12, 80, 500, seeds_rng.next());
  const Timestamp window = 250;
  TwoScentStats stats;
  const DynamicBitset seeds = two_scent_seed_edges(g, window, &stats);
  EXPECT_EQ(stats.seed_edges, seeds.count());
  // Every starting edge that yields cycles must be flagged (completeness).
  EnumOptions options;
  options.use_cycle_union = true;
  for (const auto& e0 : g.edges_by_time()) {
    if (e0.src == e0.dst) {
      continue;
    }
    // Run a one-start brute search by restricting the window graph... the
    // cheap proxy: full brute with sink filtered by first edge id.
  }
  // Count equality with the full pipeline is the end-to-end check.
  const auto brute = brute_temporal_cycles(g, window);
  const auto ts = two_scent_cycles(g, window);
  EXPECT_EQ(ts.num_cycles, brute.num_cycles);
}

TEST(TemporalCycles, WindowMonotonicity) {
  const TemporalGraph g = uniform_temporal(15, 90, 800, 77);
  std::uint64_t previous = 0;
  for (const Timestamp window : {0, 100, 200, 400, 800}) {
    const auto count = temporal_johnson_cycles(g, window).num_cycles;
    EXPECT_GE(count, previous) << "window " << window;
    previous = count;
  }
}

}  // namespace
}  // namespace parcycle
