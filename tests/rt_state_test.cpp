// Unit tests for the Read-Tarjan states (budget-keyed core variant and
// arrival-keyed temporal variant): undo-log semantics and the lock-free
// prefix copy-on-steal contract.
#include <gtest/gtest.h>

#include "core/rt_state.hpp"
#include "temporal/temporal_rt_state.hpp"

namespace parcycle {
namespace {

TEST(ReadTarjanState, LoggedSetAndTruncateRestores) {
  ReadTarjanState st(8);
  EXPECT_EQ(st.fail_rem(3), ReadTarjanState::kUnblocked);
  st.logged_set(3, 10);
  EXPECT_EQ(st.fail_rem(3), 10);
  const std::size_t mark = st.log_length();
  st.logged_set(3, 20);
  st.logged_set(4, 5);
  EXPECT_EQ(st.fail_rem(3), 20);
  st.truncate_log(mark);
  EXPECT_EQ(st.fail_rem(3), 10);  // restored to the pre-mark value
  EXPECT_EQ(st.fail_rem(4), ReadTarjanState::kUnblocked);
}

TEST(ReadTarjanState, CanVisitSemantics) {
  ReadTarjanState st(8);
  EXPECT_TRUE(st.can_visit(2, 1));
  st.logged_set(2, 7);
  EXPECT_FALSE(st.can_visit(2, 7));  // equal budget blocked
  EXPECT_FALSE(st.can_visit(2, 3));
  EXPECT_TRUE(st.can_visit(2, 8));
  st.push(5, kInvalidEdge);
  EXPECT_FALSE(st.can_visit(5, 1000));  // on-path always blocked
}

TEST(ReadTarjanState, PathTruncation) {
  ReadTarjanState st(8);
  st.push(1, kInvalidEdge);
  st.push(2, 10);
  st.push(3, 11);
  st.truncate_path(1);
  EXPECT_EQ(st.path_length(), 1u);
  EXPECT_TRUE(st.on_path(1));
  EXPECT_FALSE(st.on_path(2));
  EXPECT_FALSE(st.on_path(3));
}

TEST(ReadTarjanState, CopyPrefixReplaysLog) {
  ReadTarjanState victim(8);
  victim.push(0, kInvalidEdge);
  victim.push(1, 5);
  victim.logged_set(6, 9);       // within the prefix
  const std::size_t log_prefix = victim.log_length();
  const std::size_t path_prefix = victim.path_length();
  victim.push(2, 6);             // beyond the prefix
  victim.logged_set(7, 3);       // beyond the prefix

  ReadTarjanState thief(8);
  thief.copy_prefix_from(victim, path_prefix, log_prefix);
  EXPECT_EQ(thief.path_length(), 2u);
  EXPECT_TRUE(thief.on_path(1));
  EXPECT_FALSE(thief.on_path(2));
  EXPECT_EQ(thief.fail_rem(6), 9);
  EXPECT_EQ(thief.fail_rem(7), ReadTarjanState::kUnblocked);
  // The thief's copied log is itself rewindable.
  thief.truncate_log(0);
  EXPECT_EQ(thief.fail_rem(6), ReadTarjanState::kUnblocked);
}

TEST(ReadTarjanState, FloorGuard) {
  ReadTarjanState st(8);
  EXPECT_EQ(st.floor(), 0u);
  st.set_floor(3);
  EXPECT_EQ(st.floor(), 3u);
  st.set_floor(1);
  EXPECT_EQ(st.floor(), 1u);
}

TEST(ReadTarjanState, LogGrowsPastInitialCapacity) {
  ReadTarjanState st(4);
  for (int i = 0; i < 5000; ++i) {
    st.logged_set(static_cast<VertexId>(i % 4), i);
  }
  EXPECT_EQ(st.log_length(), 5000u);
  st.truncate_log(0);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(st.fail_rem(v), ReadTarjanState::kUnblocked);
  }
}

TEST(TemporalRTState, ArrivalKeyedBlocking) {
  TemporalRTState st(8);
  EXPECT_TRUE(st.can_visit(2, 100));
  st.logged_set(2, 50);  // arrivals >= 50 fail
  EXPECT_FALSE(st.can_visit(2, 50));
  EXPECT_FALSE(st.can_visit(2, 99));
  EXPECT_TRUE(st.can_visit(2, 49));
}

TEST(TemporalRTState, PathCarriesArrivals) {
  TemporalRTState st(8);
  st.push(0, kInvalidEdge, 10);
  st.push(1, 3, 20);
  EXPECT_EQ(st.frontier(), 1u);
  EXPECT_EQ(st.frontier_arrival(), 20);
  EXPECT_EQ(st.path_arrival(0), 10);
  st.truncate_path(1);
  EXPECT_EQ(st.frontier_arrival(), 10);
}

TEST(TemporalRTState, CopyPrefixFromVictim) {
  TemporalRTState victim(8);
  victim.push(0, kInvalidEdge, 1);
  victim.push(1, 2, 5);
  victim.logged_set(4, 7);
  const std::size_t pp = victim.path_length();
  const std::size_t lp = victim.log_length();
  victim.push(2, 3, 9);
  victim.logged_set(5, 11);

  TemporalRTState thief(8);
  thief.copy_prefix_from(victim, pp, lp);
  EXPECT_EQ(thief.path_length(), 2u);
  EXPECT_EQ(thief.frontier_arrival(), 5);
  EXPECT_FALSE(thief.can_visit(4, 8));
  EXPECT_TRUE(thief.can_visit(5, 10));  // beyond-prefix mark not copied
}

TEST(TemporalRTState, ResetClears) {
  TemporalRTState st(8);
  st.push(0, kInvalidEdge, 1);
  st.logged_set(3, 9);
  st.reset();
  EXPECT_EQ(st.path_length(), 0u);
  EXPECT_EQ(st.log_length(), 0u);
  EXPECT_TRUE(st.can_visit(3, 1000000));
}

}  // namespace
}  // namespace parcycle
