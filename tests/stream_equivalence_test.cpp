// Correctness anchor of the streaming subsystem: replaying a temporal graph
// edge-by-edge through the StreamEngine must produce exactly the batch
// temporal enumerator's cycle set (count and membership, ids included) on the
// same window — for the serial and the fine-grained per-edge search, across
// batch sizes, spawn policies and pruning on/off. Also pins the
// SlidingWindowGraph's expiry semantics against a brute-force window filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "io/edge_list.hpp"
#include "stream/engine.hpp"
#include "stream/sliding_window_graph.hpp"
#include "support/prng.hpp"
#include "support/scheduler.hpp"
#include "temporal/temporal_johnson.hpp"

namespace parcycle {
namespace {

std::vector<CycleRecord> batch_cycles(const TemporalGraph& graph,
                                      Timestamp window, int max_len = 0) {
  CollectingSink sink;
  EnumOptions options;
  options.max_cycle_length = max_len;
  temporal_johnson_cycles(graph, window, options, &sink);
  return sink.sorted_cycles();
}

struct ReplayConfig {
  unsigned threads = 1;
  std::size_t batch_size = 64;
  std::size_t hot_threshold = static_cast<std::size_t>(-1);  // never escalate
  SpawnPolicy policy = SpawnPolicy::kAdaptive;
  bool prune = true;
  std::size_t prune_threshold = 32;  // engine default
};

std::vector<CycleRecord> replay_cycles(const TemporalGraph& graph,
                                       Timestamp window,
                                       const ReplayConfig& config,
                                       int max_len = 0,
                                       StreamStats* stats_out = nullptr) {
  CollectingSink sink;
  std::uint64_t counted = 0;
  Scheduler::with_pool(config.threads, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = window;
    options.batch_size = config.batch_size;
    options.hot_frontier_threshold = config.hot_threshold;
    options.max_cycle_length = max_len;
    options.spawn_policy = config.policy;
    options.use_reach_prune = config.prune;
    options.prune_frontier_threshold = config.prune_threshold;
    StreamEngine engine(options, sched, &sink);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    counted = engine.cycles_found();
    if (stats_out != nullptr) {
      *stats_out = engine.stats();
    }
  });
  EXPECT_EQ(counted, sink.size());
  return sink.sorted_cycles();
}

// The generated graph roster: >= 3 distinct shapes (heavy-tailed bursty,
// uniform random, dense clique-based) whose batch cycle populations are
// non-trivial but enumerable in milliseconds.
struct NamedGraph {
  std::string name;
  TemporalGraph graph;
  Timestamp window;
};

std::vector<NamedGraph> generated_roster() {
  std::vector<NamedGraph> roster;
  {
    ScaleFreeTemporalParams params;
    params.num_vertices = 60;
    params.num_edges = 420;
    params.time_span = 2000;
    params.attachment = 0.8;
    params.burstiness = 0.6;
    params.allow_self_loops = true;
    params.seed = 7;
    roster.push_back({"scale_free", scale_free_temporal(params), 160});
  }
  roster.push_back(
      {"uniform", uniform_temporal(40, 320, 1200, /*seed=*/9), 140});
  roster.push_back({"dense_clique",
                    with_uniform_timestamps(complete_digraph(6), 80,
                                            /*seed=*/3),
                    40});
  return roster;
}

TEST(StreamEquivalence, SerialReplayMatchesBatch) {
  for (const auto& entry : generated_roster()) {
    SCOPED_TRACE(entry.name);
    const auto batch = batch_cycles(entry.graph, entry.window);
    ASSERT_FALSE(batch.empty()) << "degenerate roster entry";
    const auto streamed =
        replay_cycles(entry.graph, entry.window, ReplayConfig{});
    EXPECT_EQ(streamed, batch);
  }
}

TEST(StreamEquivalence, FineReplayMatchesBatch) {
  for (const auto& entry : generated_roster()) {
    SCOPED_TRACE(entry.name);
    const auto batch = batch_cycles(entry.graph, entry.window);
    // Everything escalates, every branch spawns: the maximally parallel
    // decomposition must still find each cycle exactly once.
    ReplayConfig always{4, 32, 0, SpawnPolicy::kAlways, true};
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, always), batch);
    // Mixed mode: low escalation threshold, adaptive spawning.
    ReplayConfig adaptive{4, 128, 4, SpawnPolicy::kAdaptive, true};
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, adaptive), batch);
  }
}

TEST(StreamEquivalence, BoundedLengthMatchesBatch) {
  const auto roster = generated_roster();
  const auto& entry = roster.front();
  for (const int max_len : {2, 3, 4}) {
    SCOPED_TRACE(max_len);
    const auto batch = batch_cycles(entry.graph, entry.window, max_len);
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, ReplayConfig{}, max_len),
              batch);
    ReplayConfig fine{4, 32, 0, SpawnPolicy::kAlways, true};
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, fine, max_len), batch);
  }
}

TEST(StreamEquivalence, PruningIsPurelyAnOptimisation) {
  const auto roster = generated_roster();
  const auto& entry = roster[1];
  const auto batch = batch_cycles(entry.graph, entry.window);
  ReplayConfig no_prune;
  no_prune.prune = false;
  EXPECT_EQ(replay_cycles(entry.graph, entry.window, no_prune), batch);
  // Forcing the reverse-BFS prune onto every search (threshold 0) must not
  // change the cycle set either, serial or fine.
  for (const auto& e : roster) {
    SCOPED_TRACE(e.name);
    ReplayConfig forced;
    forced.prune_threshold = 0;
    EXPECT_EQ(replay_cycles(e.graph, e.window, forced),
              batch_cycles(e.graph, e.window));
    ReplayConfig forced_fine{4, 32, 0, SpawnPolicy::kAlways, true, 0};
    EXPECT_EQ(replay_cycles(e.graph, e.window, forced_fine),
              batch_cycles(e.graph, e.window));
  }
}

TEST(StreamEquivalence, BatchSizeIsInvisible) {
  const auto roster = generated_roster();
  const auto& entry = roster.front();
  const auto batch = batch_cycles(entry.graph, entry.window);
  for (const std::size_t batch_size : {1u, 7u, 1024u}) {
    SCOPED_TRACE(batch_size);
    ReplayConfig config;
    config.batch_size = batch_size;
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, config), batch);
  }
}

TEST(StreamEquivalence, TinySnapFixtureMatchesBatch) {
  const std::string path =
      std::string(PARCYCLE_TEST_DATA_DIR) + "/tiny_snap.txt";
  const TemporalGraph graph = load_temporal_edge_list_file(path);
  ASSERT_GT(graph.num_edges(), 0u);
  for (const Timestamp window : {20, 40, 100}) {
    SCOPED_TRACE(window);
    const auto batch = batch_cycles(graph, window);
    EXPECT_EQ(replay_cycles(graph, window, ReplayConfig{}), batch);
    ReplayConfig fine{2, 4, 0, SpawnPolicy::kAlways, true};
    EXPECT_EQ(replay_cycles(graph, window, fine), batch);
  }
}

TEST(StreamEquivalence, StatsAreCoherent) {
  const auto roster = generated_roster();
  const auto& entry = roster.front();
  StreamStats stats;
  ReplayConfig config{2, 32, 8, SpawnPolicy::kAdaptive, true};
  const auto streamed =
      replay_cycles(entry.graph, entry.window, config, 0, &stats);
  EXPECT_EQ(stats.cycles_found, streamed.size());
  EXPECT_EQ(stats.edges_ingested, entry.graph.num_edges());
  EXPECT_EQ(stats.live_edges + stats.expired_edges, stats.edges_ingested);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GE(stats.latency_p99_ns, stats.latency_p50_ns);
  EXPECT_GE(stats.latency_max_ns, stats.latency_p50_ns);
}

// ---------------------------------------------------------------------------
// Out-of-order ingest: the bounded reorder stage
// ---------------------------------------------------------------------------

// Replays an explicit arrival sequence (not necessarily sorted) with the
// given reorder slack.
std::vector<CycleRecord> replay_sequence(const std::vector<TemporalEdge>& feed,
                                         Timestamp window, Timestamp slack,
                                         const ReplayConfig& config,
                                         StreamStats* stats_out = nullptr) {
  CollectingSink sink;
  Scheduler::with_pool(config.threads, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = window;
    options.reorder_slack = slack;
    options.batch_size = config.batch_size;
    options.hot_frontier_threshold = config.hot_threshold;
    options.spawn_policy = config.policy;
    options.use_reach_prune = config.prune;
    options.prune_frontier_threshold = config.prune_threshold;
    StreamEngine engine(options, sched, &sink);
    for (const auto& e : feed) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    if (stats_out != nullptr) {
      *stats_out = engine.stats();
    }
  });
  return sink.sorted_cycles();
}

// Deterministic within-slack disorder: sorting by ts + uniform[0, slack]
// guarantees every arrival is at most `slack` behind the running maximum, so
// the reorder stage must accept and re-canonicalise all of it.
std::vector<TemporalEdge> shuffled_within_slack(
    std::span<const TemporalEdge> edges, Timestamp slack, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::pair<std::pair<Timestamp, std::uint64_t>, TemporalEdge>>
      keyed;
  keyed.reserve(edges.size());
  for (const TemporalEdge& e : edges) {
    const auto jitter = static_cast<Timestamp>(
        rng.next() % static_cast<std::uint64_t>(slack + 1));
    keyed.push_back({{e.ts + jitter, rng.next()}, e});
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TemporalEdge> out;
  out.reserve(keyed.size());
  for (const auto& [key, e] : keyed) {
    out.push_back(e);
  }
  return out;
}

TEST(StreamReorder, ShuffledWithinSlackMatchesSortedAndBatch) {
  for (const auto& entry : generated_roster()) {
    SCOPED_TRACE(entry.name);
    const auto batch = batch_cycles(entry.graph, entry.window);
    ASSERT_FALSE(batch.empty());
    const Timestamp slack = std::max<Timestamp>(1, entry.window / 4);
    for (const std::uint64_t seed : {1ULL, 42ULL}) {
      const auto feed =
          shuffled_within_slack(entry.graph.edges_by_time(), slack, seed);
      StreamStats serial_stats;
      const auto serial = replay_sequence(feed, entry.window, slack,
                                          ReplayConfig{}, &serial_stats);
      // Byte-identical to the sorted replay and the batch enumerator: same
      // cycles, same edge ids, nothing late.
      EXPECT_EQ(serial, batch);
      EXPECT_EQ(serial_stats.late_edges_rejected, 0u);
      EXPECT_EQ(serial_stats.edges_ingested, entry.graph.num_edges());
      ReplayConfig fine{4, 32, 0, SpawnPolicy::kAlways, true};
      EXPECT_EQ(replay_sequence(feed, entry.window, slack, fine), batch);
    }
  }
}

TEST(StreamReorder, DuplicateTimestampsAreCanonicalised) {
  // All edges share one timestamp; arrival order is adversarial (reversed
  // canonical). The reorder stage must still release them in (ts, src, dst)
  // order, reproducing the batch enumeration exactly.
  const TemporalGraph source =
      with_uniform_timestamps(complete_digraph(5), 1, /*seed=*/13);
  const auto sorted = source.edges_by_time();
  std::vector<TemporalEdge> reversed(sorted.rbegin(), sorted.rend());
  const Timestamp window = 10;
  const auto batch = batch_cycles(source, window);
  EXPECT_EQ(replay_sequence(reversed, window, /*slack=*/5, ReplayConfig{}),
            batch);
}

TEST(StreamReorder, SlackBoundaryAcceptsAndLateRejectsAreCounted) {
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = 1000;
    options.reorder_slack = 10;
    options.batch_size = 4;
    StreamEngine engine(options, sched, nullptr);
    engine.push(0, 1, 100);  // max_seen = 100, floor = 90
    engine.push(1, 2, 90);   // exactly at the boundary: accepted
    engine.push(2, 3, 89);   // one unit below: late, counted, dropped
    engine.push(3, 4, 95);   // in-slack disorder: accepted
    engine.flush();
    const StreamStats stats = engine.stats();
    EXPECT_EQ(stats.edges_pushed, 4u);
    EXPECT_EQ(stats.edges_ingested, 3u);
    EXPECT_EQ(stats.late_edges_rejected, 1u);
    // The pressure counters ride the aggregate WorkCounters too.
    EXPECT_EQ(stats.work.late_edges_rejected, 1u);
    EXPECT_EQ(stats.reorder_buffered, 0u);  // flush drained everything
    EXPECT_GE(stats.reorder_peak_buffered, 2u);

    // Flush hardened the watermark to max_seen: an in-slack straggler older
    // than the flush point is now late.
    engine.push(4, 5, 93);
    engine.flush();
    EXPECT_EQ(engine.stats().late_edges_rejected, 2u);
  });
}

TEST(StreamReorder, ZeroSlackKeepsStrictContract) {
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = 100;
    StreamEngine engine(options, sched, nullptr);
    engine.push(0, 1, 50);
    EXPECT_THROW(engine.push(1, 2, 49), std::invalid_argument);
  });
}

TEST(StreamReorder, CompactionPressureSurfacesInWorkCounters) {
  // A long stream with a short window forces expiry compactions; the count
  // must surface through the engine's aggregate WorkCounters.
  const TemporalGraph source = uniform_temporal(10, 3000, 9000, /*seed=*/21);
  StreamStats stats;
  replay_cycles(source, /*window=*/60, ReplayConfig{}, 0, &stats);
  EXPECT_GT(stats.work.graph_compactions, 0u);
  EXPECT_GT(stats.expired_edges, 0u);
}

// ---------------------------------------------------------------------------
// Multi-δ window lanes: one ingest, several concurrent horizons
// ---------------------------------------------------------------------------

TEST(StreamMultiWindow, LanesMatchIndependentSingleWindowEngines) {
  for (const auto& entry : generated_roster()) {
    SCOPED_TRACE(entry.name);
    const std::vector<Timestamp> lanes = {
        std::max<Timestamp>(1, entry.window / 4),
        std::max<Timestamp>(1, entry.window / 2), entry.window};

    // Reference: one engine per window, plus the batch enumerator.
    std::vector<std::vector<CycleRecord>> independent;
    for (const Timestamp w : lanes) {
      CollectingSink sink;
      Scheduler::with_pool(2, [&](Scheduler& sched) {
        StreamOptions options;
        options.window = w;
        options.batch_size = 32;
        StreamEngine engine(options, sched, &sink);
        for (const auto& e : entry.graph.edges_by_time()) {
          engine.push(e.src, e.dst, e.ts);
        }
        engine.flush();
      });
      independent.push_back(sink.sorted_cycles());
    }

    // One multi-δ engine: per-lane sinks, one shared ingest.
    std::vector<CollectingSink> lane_sinks(lanes.size());
    StreamStats stats;
    Scheduler::with_pool(2, [&](Scheduler& sched) {
      StreamOptions options;
      options.windows = lanes;
      options.batch_size = 32;
      std::vector<CycleSink*> sinks;
      for (auto& s : lane_sinks) {
        sinks.push_back(&s);
      }
      StreamEngine engine(options, sched, sinks);
      EXPECT_EQ(engine.window_lanes(), lanes);
      for (const auto& e : entry.graph.edges_by_time()) {
        engine.push(e.src, e.dst, e.ts);
      }
      engine.flush();
      stats = engine.stats();
    });

    ASSERT_EQ(stats.per_window.size(), lanes.size());
    std::uint64_t lane_total = 0;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      SCOPED_TRACE(lanes[i]);
      EXPECT_EQ(lane_sinks[i].sorted_cycles(), independent[i]);
      EXPECT_EQ(lane_sinks[i].sorted_cycles(),
                batch_cycles(entry.graph, lanes[i]));
      EXPECT_EQ(stats.per_window[i].window, lanes[i]);
      EXPECT_EQ(stats.per_window[i].cycles_found, independent[i].size());
      lane_total += stats.per_window[i].cycles_found;
    }
    // Scalar aggregates sum the lanes; the shared graph ingested each edge
    // exactly once regardless of lane count.
    EXPECT_EQ(stats.cycles_found, lane_total);
    EXPECT_EQ(stats.edges_ingested, entry.graph.num_edges());
  }
}

TEST(StreamMultiWindow, SingleSinkCtorFeedsFirstLane) {
  const auto roster = generated_roster();
  const auto& entry = roster.front();
  CollectingSink sink;
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamOptions options;
    options.windows = {entry.window, entry.window * 2};
    options.batch_size = 16;
    StreamEngine engine(options, sched, &sink);
    for (const auto& e : entry.graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
  });
  EXPECT_EQ(sink.sorted_cycles(), batch_cycles(entry.graph, entry.window));
}

// ---------------------------------------------------------------------------
// Sliding-window expiry semantics vs a brute-force filter
// ---------------------------------------------------------------------------

TEST(SlidingWindow, ExpiryMatchesBruteForceFilter) {
  const TemporalGraph source = uniform_temporal(24, 400, 600, /*seed=*/17);
  const Timestamp window = 90;

  SlidingWindowGraph live;
  std::vector<TemporalEdge> all;  // everything ingested so far
  Timestamp cutoff = std::numeric_limits<Timestamp>::min();
  for (const auto& e : source.edges_by_time()) {
    if (e.ts - window > cutoff) {
      cutoff = e.ts - window;
      live.expire_before(cutoff);
    }
    live.ingest(e.src, e.dst, e.ts);
    all.push_back(e);

    // Brute-force expectation: edges with ts >= cutoff, in arrival order.
    std::vector<TemporalEdge> expect_live;
    for (const auto& kept : all) {
      if (kept.ts >= cutoff) {
        expect_live.push_back(kept);
      }
    }
    ASSERT_EQ(live.live_edges(), expect_live.size());

    for (VertexId v = 0; v < live.num_vertices(); ++v) {
      std::vector<std::pair<VertexId, Timestamp>> expect_out;
      std::vector<std::pair<VertexId, Timestamp>> expect_in;
      for (const auto& kept : expect_live) {
        if (kept.src == v) expect_out.emplace_back(kept.dst, kept.ts);
        if (kept.dst == v) expect_in.emplace_back(kept.src, kept.ts);
      }
      const auto out = live.out_edges(v);
      ASSERT_EQ(out.size(), expect_out.size()) << "vertex " << v;
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].dst, expect_out[i].first);
        EXPECT_EQ(out[i].ts, expect_out[i].second);
      }
      const auto in = live.in_edges(v);
      ASSERT_EQ(in.size(), expect_in.size()) << "vertex " << v;
      for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(in[i].src, expect_in[i].first);
        EXPECT_EQ(in[i].ts, expect_in[i].second);
      }
    }
  }
  EXPECT_GT(live.total_expired(), 0u);
  EXPECT_GT(live.expiry_epochs(), 0u);
}

TEST(SlidingWindow, WindowedSpansMatchTemporalGraphContract) {
  const TemporalGraph source = uniform_temporal(16, 200, 300, /*seed=*/5);
  SlidingWindowGraph live(source.num_vertices());
  for (const auto& e : source.edges_by_time()) {
    live.ingest(e.src, e.dst, e.ts);
  }
  // No expiry yet: windowed queries must agree with the immutable CSR's.
  const std::vector<std::pair<Timestamp, Timestamp>> windows = {
      {50, 120}, {0, 299}, {200, 100}};
  for (VertexId v = 0; v < source.num_vertices(); ++v) {
    for (const auto& [lo, hi] : windows) {
      const auto a = source.out_edges_in_window(v, lo, hi);
      const auto b = live.out_edges_in_window(v, lo, hi);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].dst, b[i].dst);
        EXPECT_EQ(a[i].ts, b[i].ts);
        EXPECT_EQ(a[i].id, b[i].id);
      }
    }
  }
}

TEST(SlidingWindow, RejectsTimestampRegression) {
  SlidingWindowGraph live;
  live.ingest(0, 1, 10);
  EXPECT_THROW(live.ingest(1, 0, 9), std::invalid_argument);
  EXPECT_NO_THROW(live.ingest(1, 0, 10));  // ties are fine
}

TEST(SlidingWindow, SnapshotReproducesBatchGraph) {
  const TemporalGraph source = uniform_temporal(12, 150, 250, /*seed=*/11);
  SlidingWindowGraph live;
  for (const auto& e : source.edges_by_time()) {
    live.ingest(e.src, e.dst, e.ts);
  }
  const TemporalGraph snap = live.snapshot();
  ASSERT_EQ(snap.num_edges(), source.num_edges());
  const auto a = source.edges_by_time();
  const auto b = snap.edges_by_time();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].ts, b[i].ts);
  }
}

}  // namespace
}  // namespace parcycle
