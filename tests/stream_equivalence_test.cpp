// Correctness anchor of the streaming subsystem: replaying a temporal graph
// edge-by-edge through the StreamEngine must produce exactly the batch
// temporal enumerator's cycle set (count and membership, ids included) on the
// same window — for the serial and the fine-grained per-edge search, across
// batch sizes, spawn policies and pruning on/off. Also pins the
// SlidingWindowGraph's expiry semantics against a brute-force window filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "io/edge_list.hpp"
#include "stream/engine.hpp"
#include "stream/sliding_window_graph.hpp"
#include "support/scheduler.hpp"
#include "temporal/temporal_johnson.hpp"

namespace parcycle {
namespace {

std::vector<CycleRecord> batch_cycles(const TemporalGraph& graph,
                                      Timestamp window, int max_len = 0) {
  CollectingSink sink;
  EnumOptions options;
  options.max_cycle_length = max_len;
  temporal_johnson_cycles(graph, window, options, &sink);
  return sink.sorted_cycles();
}

struct ReplayConfig {
  unsigned threads = 1;
  std::size_t batch_size = 64;
  std::size_t hot_threshold = static_cast<std::size_t>(-1);  // never escalate
  SpawnPolicy policy = SpawnPolicy::kAdaptive;
  bool prune = true;
  std::size_t prune_threshold = 32;  // engine default
};

std::vector<CycleRecord> replay_cycles(const TemporalGraph& graph,
                                       Timestamp window,
                                       const ReplayConfig& config,
                                       int max_len = 0,
                                       StreamStats* stats_out = nullptr) {
  CollectingSink sink;
  std::uint64_t counted = 0;
  Scheduler::with_pool(config.threads, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = window;
    options.batch_size = config.batch_size;
    options.hot_frontier_threshold = config.hot_threshold;
    options.max_cycle_length = max_len;
    options.spawn_policy = config.policy;
    options.use_reach_prune = config.prune;
    options.prune_frontier_threshold = config.prune_threshold;
    StreamEngine engine(options, sched, &sink);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    counted = engine.cycles_found();
    if (stats_out != nullptr) {
      *stats_out = engine.stats();
    }
  });
  EXPECT_EQ(counted, sink.size());
  return sink.sorted_cycles();
}

// The generated graph roster: >= 3 distinct shapes (heavy-tailed bursty,
// uniform random, dense clique-based) whose batch cycle populations are
// non-trivial but enumerable in milliseconds.
struct NamedGraph {
  std::string name;
  TemporalGraph graph;
  Timestamp window;
};

std::vector<NamedGraph> generated_roster() {
  std::vector<NamedGraph> roster;
  {
    ScaleFreeTemporalParams params;
    params.num_vertices = 60;
    params.num_edges = 420;
    params.time_span = 2000;
    params.attachment = 0.8;
    params.burstiness = 0.6;
    params.allow_self_loops = true;
    params.seed = 7;
    roster.push_back({"scale_free", scale_free_temporal(params), 160});
  }
  roster.push_back(
      {"uniform", uniform_temporal(40, 320, 1200, /*seed=*/9), 140});
  roster.push_back({"dense_clique",
                    with_uniform_timestamps(complete_digraph(6), 80,
                                            /*seed=*/3),
                    40});
  return roster;
}

TEST(StreamEquivalence, SerialReplayMatchesBatch) {
  for (const auto& entry : generated_roster()) {
    SCOPED_TRACE(entry.name);
    const auto batch = batch_cycles(entry.graph, entry.window);
    ASSERT_FALSE(batch.empty()) << "degenerate roster entry";
    const auto streamed =
        replay_cycles(entry.graph, entry.window, ReplayConfig{});
    EXPECT_EQ(streamed, batch);
  }
}

TEST(StreamEquivalence, FineReplayMatchesBatch) {
  for (const auto& entry : generated_roster()) {
    SCOPED_TRACE(entry.name);
    const auto batch = batch_cycles(entry.graph, entry.window);
    // Everything escalates, every branch spawns: the maximally parallel
    // decomposition must still find each cycle exactly once.
    ReplayConfig always{4, 32, 0, SpawnPolicy::kAlways, true};
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, always), batch);
    // Mixed mode: low escalation threshold, adaptive spawning.
    ReplayConfig adaptive{4, 128, 4, SpawnPolicy::kAdaptive, true};
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, adaptive), batch);
  }
}

TEST(StreamEquivalence, BoundedLengthMatchesBatch) {
  const auto roster = generated_roster();
  const auto& entry = roster.front();
  for (const int max_len : {2, 3, 4}) {
    SCOPED_TRACE(max_len);
    const auto batch = batch_cycles(entry.graph, entry.window, max_len);
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, ReplayConfig{}, max_len),
              batch);
    ReplayConfig fine{4, 32, 0, SpawnPolicy::kAlways, true};
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, fine, max_len), batch);
  }
}

TEST(StreamEquivalence, PruningIsPurelyAnOptimisation) {
  const auto roster = generated_roster();
  const auto& entry = roster[1];
  const auto batch = batch_cycles(entry.graph, entry.window);
  ReplayConfig no_prune;
  no_prune.prune = false;
  EXPECT_EQ(replay_cycles(entry.graph, entry.window, no_prune), batch);
  // Forcing the reverse-BFS prune onto every search (threshold 0) must not
  // change the cycle set either, serial or fine.
  for (const auto& e : roster) {
    SCOPED_TRACE(e.name);
    ReplayConfig forced;
    forced.prune_threshold = 0;
    EXPECT_EQ(replay_cycles(e.graph, e.window, forced),
              batch_cycles(e.graph, e.window));
    ReplayConfig forced_fine{4, 32, 0, SpawnPolicy::kAlways, true, 0};
    EXPECT_EQ(replay_cycles(e.graph, e.window, forced_fine),
              batch_cycles(e.graph, e.window));
  }
}

TEST(StreamEquivalence, BatchSizeIsInvisible) {
  const auto roster = generated_roster();
  const auto& entry = roster.front();
  const auto batch = batch_cycles(entry.graph, entry.window);
  for (const std::size_t batch_size : {1u, 7u, 1024u}) {
    SCOPED_TRACE(batch_size);
    ReplayConfig config;
    config.batch_size = batch_size;
    EXPECT_EQ(replay_cycles(entry.graph, entry.window, config), batch);
  }
}

TEST(StreamEquivalence, TinySnapFixtureMatchesBatch) {
  const std::string path =
      std::string(PARCYCLE_TEST_DATA_DIR) + "/tiny_snap.txt";
  const TemporalGraph graph = load_temporal_edge_list_file(path);
  ASSERT_GT(graph.num_edges(), 0u);
  for (const Timestamp window : {20, 40, 100}) {
    SCOPED_TRACE(window);
    const auto batch = batch_cycles(graph, window);
    EXPECT_EQ(replay_cycles(graph, window, ReplayConfig{}), batch);
    ReplayConfig fine{2, 4, 0, SpawnPolicy::kAlways, true};
    EXPECT_EQ(replay_cycles(graph, window, fine), batch);
  }
}

TEST(StreamEquivalence, StatsAreCoherent) {
  const auto roster = generated_roster();
  const auto& entry = roster.front();
  StreamStats stats;
  ReplayConfig config{2, 32, 8, SpawnPolicy::kAdaptive, true};
  const auto streamed =
      replay_cycles(entry.graph, entry.window, config, 0, &stats);
  EXPECT_EQ(stats.cycles_found, streamed.size());
  EXPECT_EQ(stats.edges_ingested, entry.graph.num_edges());
  EXPECT_EQ(stats.live_edges + stats.expired_edges, stats.edges_ingested);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GE(stats.latency_p99_ns, stats.latency_p50_ns);
  EXPECT_GE(stats.latency_max_ns, stats.latency_p50_ns);
}

// ---------------------------------------------------------------------------
// Sliding-window expiry semantics vs a brute-force filter
// ---------------------------------------------------------------------------

TEST(SlidingWindow, ExpiryMatchesBruteForceFilter) {
  const TemporalGraph source = uniform_temporal(24, 400, 600, /*seed=*/17);
  const Timestamp window = 90;

  SlidingWindowGraph live;
  std::vector<TemporalEdge> all;  // everything ingested so far
  Timestamp cutoff = std::numeric_limits<Timestamp>::min();
  for (const auto& e : source.edges_by_time()) {
    if (e.ts - window > cutoff) {
      cutoff = e.ts - window;
      live.expire_before(cutoff);
    }
    live.ingest(e.src, e.dst, e.ts);
    all.push_back(e);

    // Brute-force expectation: edges with ts >= cutoff, in arrival order.
    std::vector<TemporalEdge> expect_live;
    for (const auto& kept : all) {
      if (kept.ts >= cutoff) {
        expect_live.push_back(kept);
      }
    }
    ASSERT_EQ(live.live_edges(), expect_live.size());

    for (VertexId v = 0; v < live.num_vertices(); ++v) {
      std::vector<std::pair<VertexId, Timestamp>> expect_out;
      std::vector<std::pair<VertexId, Timestamp>> expect_in;
      for (const auto& kept : expect_live) {
        if (kept.src == v) expect_out.emplace_back(kept.dst, kept.ts);
        if (kept.dst == v) expect_in.emplace_back(kept.src, kept.ts);
      }
      const auto out = live.out_edges(v);
      ASSERT_EQ(out.size(), expect_out.size()) << "vertex " << v;
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].dst, expect_out[i].first);
        EXPECT_EQ(out[i].ts, expect_out[i].second);
      }
      const auto in = live.in_edges(v);
      ASSERT_EQ(in.size(), expect_in.size()) << "vertex " << v;
      for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(in[i].src, expect_in[i].first);
        EXPECT_EQ(in[i].ts, expect_in[i].second);
      }
    }
  }
  EXPECT_GT(live.total_expired(), 0u);
  EXPECT_GT(live.expiry_epochs(), 0u);
}

TEST(SlidingWindow, WindowedSpansMatchTemporalGraphContract) {
  const TemporalGraph source = uniform_temporal(16, 200, 300, /*seed=*/5);
  SlidingWindowGraph live(source.num_vertices());
  for (const auto& e : source.edges_by_time()) {
    live.ingest(e.src, e.dst, e.ts);
  }
  // No expiry yet: windowed queries must agree with the immutable CSR's.
  const std::vector<std::pair<Timestamp, Timestamp>> windows = {
      {50, 120}, {0, 299}, {200, 100}};
  for (VertexId v = 0; v < source.num_vertices(); ++v) {
    for (const auto& [lo, hi] : windows) {
      const auto a = source.out_edges_in_window(v, lo, hi);
      const auto b = live.out_edges_in_window(v, lo, hi);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].dst, b[i].dst);
        EXPECT_EQ(a[i].ts, b[i].ts);
        EXPECT_EQ(a[i].id, b[i].id);
      }
    }
  }
}

TEST(SlidingWindow, RejectsTimestampRegression) {
  SlidingWindowGraph live;
  live.ingest(0, 1, 10);
  EXPECT_THROW(live.ingest(1, 0, 9), std::invalid_argument);
  EXPECT_NO_THROW(live.ingest(1, 0, 10));  // ties are fine
}

TEST(SlidingWindow, SnapshotReproducesBatchGraph) {
  const TemporalGraph source = uniform_temporal(12, 150, 250, /*seed=*/11);
  SlidingWindowGraph live;
  for (const auto& e : source.edges_by_time()) {
    live.ingest(e.src, e.dst, e.ts);
  }
  const TemporalGraph snap = live.snapshot();
  ASSERT_EQ(snap.num_edges(), source.num_edges());
  const auto a = source.edges_by_time();
  const auto b = snap.edges_by_time();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].ts, b[i].ts);
  }
}

}  // namespace
}  // namespace parcycle
