#include "io/graph_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/generators.hpp"
#include "io/edge_list.hpp"

namespace parcycle {
namespace {

TemporalGraph generated(std::size_t edges, std::uint64_t seed) {
  ScaleFreeTemporalParams params;
  params.num_vertices = static_cast<VertexId>(edges / 8 + 16);
  params.num_edges = edges;
  params.time_span = 50'000;
  params.attachment = 0.7;
  params.burstiness = 0.5;
  params.seed = seed;
  return scale_free_temporal(params);
}

void expect_same_graph(const TemporalGraph& a, const TemporalGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const auto ea = a.edges_by_time();
  const auto eb = b.edges_by_time();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].src, eb[i].src) << "edge " << i;
    ASSERT_EQ(ea[i].dst, eb[i].dst) << "edge " << i;
    ASSERT_EQ(ea[i].ts, eb[i].ts) << "edge " << i;
    ASSERT_EQ(ea[i].id, eb[i].id) << "edge " << i;
  }
  ASSERT_EQ(a.min_timestamp(), b.min_timestamp());
  ASSERT_EQ(a.max_timestamp(), b.max_timestamp());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto oa = a.out_edges(v);
    const auto ob = b.out_edges(v);
    ASSERT_EQ(oa.size(), ob.size()) << "vertex " << v;
    for (std::size_t i = 0; i < oa.size(); ++i) {
      ASSERT_EQ(oa[i].dst, ob[i].dst);
      ASSERT_EQ(oa[i].ts, ob[i].ts);
      ASSERT_EQ(oa[i].id, ob[i].id);
    }
    const auto ia = a.in_edges(v);
    const auto ib = b.in_edges(v);
    ASSERT_EQ(ia.size(), ib.size()) << "vertex " << v;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      ASSERT_EQ(ia[i].src, ib[i].src);
      ASSERT_EQ(ia[i].ts, ib[i].ts);
      ASSERT_EQ(ia[i].id, ib[i].id);
    }
  }
}

std::string cache_bytes(const TemporalGraph& graph) {
  std::ostringstream out(std::ios::binary);
  save_graph_cache(graph, out);
  return out.str();
}

TemporalGraph load_bytes(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return load_graph_cache(in);
}

TEST(GraphCache, RoundTripIdentity) {
  const TemporalGraph original = generated(10'000, 3);
  const TemporalGraph reloaded = load_bytes(cache_bytes(original));
  expect_same_graph(original, reloaded);
}

TEST(GraphCache, EmptyAndTinyGraphs) {
  const TemporalGraph empty;
  expect_same_graph(empty, load_bytes(cache_bytes(empty)));
  const TemporalGraph tiny = parse_temporal_edge_list("0 1 5\n1 0 6\n");
  expect_same_graph(tiny, load_bytes(cache_bytes(tiny)));
}

TEST(GraphCache, SaveLoadSaveIsByteIdentical) {
  const TemporalGraph original = generated(5'000, 11);
  const std::string first = cache_bytes(original);
  const std::string second = cache_bytes(load_bytes(first));
  EXPECT_EQ(first, second);
}

TEST(GraphCache, CacheEqualsTextParseThroughFiles) {
  const TemporalGraph original = generated(8'000, 21);
  const std::string text_path = testing::TempDir() + "cache_eq.txt";
  const std::string cache_path = text_path + kGraphCacheExtension;
  save_temporal_edge_list_file(original, text_path);
  const TemporalGraph parsed = load_temporal_edge_list_file(text_path);
  save_graph_cache_file(parsed, cache_path);
  const TemporalGraph cached = load_graph_cache_file(cache_path);
  expect_same_graph(parsed, cached);
  expect_same_graph(original, cached);
  EXPECT_TRUE(is_graph_cache_file(cache_path));
  EXPECT_FALSE(is_graph_cache_file(text_path));
  EXPECT_FALSE(is_graph_cache_file(text_path + ".does-not-exist"));

  // load_graph_any sniffs by magic, not by file name.
  bool from_cache = false;
  expect_same_graph(load_graph_any(cache_path, nullptr, {}, nullptr,
                                   &from_cache),
                    cached);
  EXPECT_TRUE(from_cache);
  LoadStats stats;
  expect_same_graph(load_graph_any(text_path, nullptr, {}, &stats,
                                   &from_cache),
                    cached);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(stats.edges_loaded, cached.num_edges());

  std::remove(text_path.c_str());
  std::remove(cache_path.c_str());
}

TEST(GraphCache, TruncationRejectedEverywhere) {
  const std::string bytes = cache_bytes(generated(500, 5));
  // Every strict prefix must be rejected as truncated, never mis-loaded.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{17}, std::size_t{47},
        bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(load_bytes(bytes.substr(0, keep)), std::runtime_error)
        << "prefix of " << keep << " bytes";
  }
}

TEST(GraphCache, BadMagicAndVersionRejected) {
  EXPECT_THROW(load_bytes("hello world, this is not a cache"),
               std::runtime_error);
  std::string bytes = cache_bytes(generated(100, 6));
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW(load_bytes(wrong_magic), std::runtime_error);
  std::string wrong_version = bytes;
  wrong_version[4] = 99;  // version field follows the 4-byte magic
  try {
    load_bytes(wrong_version);
    FAIL() << "expected a version error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST(GraphCache, PayloadCorruptionFailsChecksum) {
  const std::string bytes = cache_bytes(generated(1'000, 7));
  // Header: magic(4) + version(4) + counts(16) + timestamps(16) +
  // checksum(8) = 48 bytes; everything after is checksummed payload.
  for (const std::size_t victim : {std::size_t{48}, bytes.size() / 2,
                                   bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0x20);
    EXPECT_THROW(load_bytes(corrupt), std::runtime_error)
        << "flipped byte " << victim;
  }
}

TEST(GraphCache, HeaderTimestampMismatchRejected) {
  std::string bytes = cache_bytes(generated(1'000, 8));
  bytes[24] = static_cast<char>(bytes[24] ^ 0x01);  // min_ts field
  EXPECT_THROW(load_bytes(bytes), std::runtime_error);
}

TEST(GraphCache, UnreadablePathsThrow) {
  EXPECT_THROW(load_graph_cache_file("/nonexistent/graph.pcg"),
               std::runtime_error);
  EXPECT_THROW(save_graph_cache_file(TemporalGraph(), "/nonexistent/g.pcg"),
               std::runtime_error);
}

}  // namespace
}  // namespace parcycle
