// Unit tests for the Johnson search state: blocking semantics, recursive
// unblocking, budget-aware pruning, and the copy-on-steal repair contract.
#include "core/johnson_state.hpp"

#include <gtest/gtest.h>

namespace parcycle {
namespace {

TEST(JohnsonState, PathPushPop) {
  JohnsonState st(10);
  EXPECT_EQ(st.path_length(), 0u);
  st.push(3, kInvalidEdge);
  st.push(5, 42);
  EXPECT_EQ(st.path_length(), 2u);
  EXPECT_EQ(st.frontier(), 5u);
  EXPECT_EQ(st.path_vertex(0), 3u);
  EXPECT_EQ(st.path_edge(1), 42u);
  EXPECT_TRUE(st.on_path(3));
  EXPECT_TRUE(st.on_path(5));
  st.pop();
  EXPECT_FALSE(st.on_path(5));
  EXPECT_TRUE(st.on_path(3));
}

TEST(JohnsonState, OnPathVertexBlocksEveryBudget) {
  JohnsonState st(10);
  st.push(2, kInvalidEdge);
  EXPECT_FALSE(st.can_visit(2, 1));
  EXPECT_FALSE(st.can_visit(2, 1000000));
}

TEST(JohnsonState, FailureBlocksAtAndBelowBudget) {
  JohnsonState st(10);
  st.push(2, kInvalidEdge);
  st.exit_failure(2, 7);
  st.pop();
  EXPECT_FALSE(st.can_visit(2, 7));  // equal budget: still blocked
  EXPECT_FALSE(st.can_visit(2, 3));
  EXPECT_TRUE(st.can_visit(2, 8));  // strictly larger budget may retry
}

TEST(JohnsonState, SuccessUnblocks) {
  JohnsonState st(10);
  st.push(2, kInvalidEdge);
  st.exit_success(2);
  st.pop();
  EXPECT_TRUE(st.can_visit(2, 1));
}

TEST(JohnsonState, RecursiveUnblockingCascades) {
  JohnsonState st(10);
  // 3 failed and waits on 4; 4 failed and waits on 5.
  st.push(3, kInvalidEdge);
  st.exit_failure(3, 100);
  st.pop();
  st.blist_add(4, 3);
  st.push(4, kInvalidEdge);
  st.exit_failure(4, 100);
  st.pop();
  st.blist_add(5, 4);
  st.push(5, kInvalidEdge);
  st.exit_failure(5, 100);
  st.pop();
  EXPECT_FALSE(st.can_visit(3, 100));
  EXPECT_FALSE(st.can_visit(4, 100));
  // Unblocking 5 must cascade 5 -> 4 -> 3. (unblock is a no-op on vertices
  // that are not blocked, matching the algorithm's call sites.)
  st.unblock(5);
  EXPECT_TRUE(st.can_visit(4, 1));
  EXPECT_TRUE(st.can_visit(3, 1));
}

TEST(JohnsonState, CascadeSkipsOnPathVertices) {
  JohnsonState st(10);
  st.push(3, kInvalidEdge);
  st.exit_failure(3, 100);
  st.pop();
  st.blist_add(5, 3);
  st.push(3, kInvalidEdge);  // 3 is re-visited and currently on the path
  st.unblock(5);
  // 3 stays blocked (it is on the path); path simplicity must win.
  EXPECT_FALSE(st.can_visit(3, 100));
}

TEST(JohnsonState, BlistDeduplicates) {
  JohnsonState st(10);
  st.blist_add(4, 3);
  st.blist_add(4, 3);
  st.blist_add(4, 3);
  // One unblock consumes the entry exactly once; no crash, 3 unblocked.
  st.push(3, kInvalidEdge);
  st.exit_failure(3, 50);
  st.pop();
  st.push(4, kInvalidEdge);
  st.exit_failure(4, 50);
  st.pop();
  st.unblock(4);
  EXPECT_TRUE(st.can_visit(3, 1));
}

TEST(JohnsonState, ResetClearsEverything) {
  JohnsonState st(10);
  st.push(1, kInvalidEdge);
  st.push(2, 9);
  st.exit_failure(2, 5);
  st.blist_add(3, 2);
  st.reset();
  EXPECT_EQ(st.path_length(), 0u);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_TRUE(st.can_visit(v, 1)) << v;
    EXPECT_FALSE(st.on_path(v)) << v;
  }
}

TEST(JohnsonState, CopyFromReplicatesBlockingAndPath) {
  JohnsonState victim(10);
  victim.push(0, kInvalidEdge);
  victim.push(1, 11);
  victim.push(2, 12);
  victim.exit_failure(7, 33);
  victim.blist_add(8, 7);
  victim.push(8, kInvalidEdge);
  victim.exit_failure(8, 20);
  victim.pop();

  JohnsonState thief(10);
  thief.copy_from(victim);
  EXPECT_EQ(thief.path_length(), 3u);
  EXPECT_EQ(thief.path_vertex(2), 2u);
  EXPECT_TRUE(thief.on_path(1));
  EXPECT_FALSE(thief.can_visit(7, 33));
  // The copied Blist must cascade in the copy.
  thief.unblock(8);
  EXPECT_TRUE(thief.can_visit(7, 1));
  // ...without affecting the victim.
  EXPECT_FALSE(victim.can_visit(7, 33));
  EXPECT_FALSE(victim.can_visit(8, 20));
}

TEST(JohnsonState, RepairUnblocksRemovedSuffix) {
  // The Figure 6 scenario: vertices blocked *because of* the removed path
  // suffix must reopen; vertices blocked independently must stay blocked.
  JohnsonState victim(10);
  victim.push(0, kInvalidEdge);  // prefix the stolen task keeps
  victim.push(1, 11);            // suffix the victim added afterwards
  victim.push(2, 12);
  // b1=5 depends on the suffix vertex 1 (5 in Blist[1]); b3=6 depends on
  // vertex 7 which is not on the path at all.
  victim.exit_failure(5, 100);
  victim.blist_add(1, 5);
  victim.exit_failure(6, 100);
  victim.blist_add(7, 6);

  JohnsonState thief(10);
  thief.copy_from(victim);
  thief.repair_to_prefix(1);
  EXPECT_EQ(thief.path_length(), 1u);
  EXPECT_FALSE(thief.on_path(1));
  EXPECT_FALSE(thief.on_path(2));
  EXPECT_TRUE(thief.can_visit(5, 1)) << "suffix-dependent block must reopen";
  EXPECT_FALSE(thief.can_visit(6, 100)) << "independent block must survive";
}

TEST(JohnsonState, NaiveRestoreDropsAllBlocking) {
  JohnsonState victim(10);
  victim.push(0, kInvalidEdge);
  victim.push(1, 11);
  victim.exit_failure(6, 100);
  victim.blist_add(7, 6);

  JohnsonState thief(10);
  thief.copy_from(victim);
  thief.naive_restore_to_prefix(1);
  EXPECT_EQ(thief.path_length(), 1u);
  EXPECT_TRUE(thief.can_visit(6, 1)) << "naive mode forgets all blocks";
}

TEST(JohnsonState, CountersTrackOperations) {
  JohnsonState st(10);
  st.push(1, kInvalidEdge);
  st.exit_failure(1, 5);
  st.pop();
  st.unblock(1);
  EXPECT_GE(st.counters.unblock_operations, 1u);
  JohnsonState copy(10);
  copy.copy_from(st);
  EXPECT_EQ(copy.counters.state_copies, 1u);
}

TEST(ScratchPool, AcquireReleaseReuses) {
  ScratchPool<JohnsonState> pool(
      [] { return std::make_unique<JohnsonState>(8); });
  auto a = pool.acquire();
  JohnsonState* raw = a.get();
  pool.release(std::move(a));
  auto b = pool.acquire();
  EXPECT_EQ(b.get(), raw);  // same object comes back
  auto c = pool.acquire();  // pool empty: a fresh one is made
  EXPECT_NE(c.get(), raw);
  pool.release(std::move(b));
  pool.release(std::move(c));
}

}  // namespace
}  // namespace parcycle
