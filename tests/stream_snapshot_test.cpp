// StreamEngine snapshot/restore: a monitor killed mid-stream and restored
// from its snapshot must be indistinguishable from one that never stopped —
// same cycles (edge ids included), same deterministic counters — and a
// corrupt, truncated or mismatching snapshot must be rejected loudly, never
// half-restored.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "stream/engine.hpp"
#include "support/scheduler.hpp"
#include "temporal/temporal_johnson.hpp"

namespace parcycle {
namespace {

TemporalGraph test_graph() {
  ScaleFreeTemporalParams params;
  params.num_vertices = 50;
  params.num_edges = 400;
  params.time_span = 1500;
  params.attachment = 0.8;
  params.burstiness = 0.5;
  params.allow_self_loops = true;
  params.seed = 23;
  return scale_free_temporal(params);
}

constexpr Timestamp kWindow = 150;

StreamOptions engine_options() {
  StreamOptions options;
  options.window = kWindow;
  options.batch_size = 32;
  options.hot_frontier_threshold = 8;  // exercise escalated searches too
  return options;
}

// Runs the full stream uninterrupted; the reference every restored run must
// reproduce.
void run_reference(const TemporalGraph& graph, const StreamOptions& options,
                   CollectingSink& sink, StreamStats& stats) {
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &sink);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    stats = engine.stats();
  });
}

// Feeds `break_at` edges, snapshots, restores into a fresh engine and feeds
// the rest. Returns the restored run's cycles and stats.
void run_interrupted(const TemporalGraph& graph, const StreamOptions& options,
                     std::size_t break_at, CollectingSink& sink,
                     StreamStats& stats, std::string* snapshot_bytes = nullptr) {
  const auto edges = graph.edges_by_time();
  ASSERT_LT(break_at, edges.size());
  std::stringstream snapshot;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    // The first incarnation also reports to `sink`: alerts raised before the
    // kill were already delivered, the restored engine must not re-raise
    // them.
    StreamEngine engine(options, sched, &sink);
    for (std::size_t i = 0; i < break_at; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    engine.save_snapshot(snapshot);
  });
  if (snapshot_bytes != nullptr) {
    *snapshot_bytes = snapshot.str();
  }
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &sink);
    engine.restore_snapshot(snapshot);
    const std::uint64_t resume_at = engine.edges_pushed();
    EXPECT_EQ(resume_at, break_at);
    for (std::size_t i = resume_at; i < edges.size(); ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    engine.flush();
    stats = engine.stats();
  });
}

void expect_stats_equal(const StreamStats& a, const StreamStats& b) {
  EXPECT_EQ(a.cycles_found, b.cycles_found);
  EXPECT_EQ(a.edges_pushed, b.edges_pushed);
  EXPECT_EQ(a.edges_ingested, b.edges_ingested);
  EXPECT_EQ(a.expired_edges, b.expired_edges);
  EXPECT_EQ(a.live_edges, b.live_edges);
  EXPECT_EQ(a.escalated_edges, b.escalated_edges);
  EXPECT_EQ(a.late_edges_rejected, b.late_edges_rejected);
  EXPECT_EQ(a.work.edges_visited, b.work.edges_visited);
  ASSERT_EQ(a.per_window.size(), b.per_window.size());
  for (std::size_t i = 0; i < a.per_window.size(); ++i) {
    EXPECT_EQ(a.per_window[i].window, b.per_window[i].window);
    EXPECT_EQ(a.per_window[i].cycles_found, b.per_window[i].cycles_found);
    EXPECT_EQ(a.per_window[i].escalated_edges, b.per_window[i].escalated_edges);
    EXPECT_EQ(a.per_window[i].work.edges_visited,
              b.per_window[i].work.edges_visited);
  }
}

TEST(StreamSnapshot, KillAndRestoreMatchesUninterruptedRun) {
  const TemporalGraph graph = test_graph();
  const StreamOptions options = engine_options();
  CollectingSink reference_sink;
  StreamStats reference_stats;
  run_reference(graph, options, reference_sink, reference_stats);
  ASSERT_GT(reference_stats.cycles_found, 0u);

  // Break mid-batch (not a multiple of batch_size: the pending buffer is
  // non-empty in the snapshot) and at a batch boundary.
  for (const std::size_t break_at : {37u, 64u, 201u, 399u}) {
    SCOPED_TRACE(break_at);
    CollectingSink sink;
    StreamStats stats;
    run_interrupted(graph, options, break_at, sink, stats);
    EXPECT_EQ(sink.sorted_cycles(), reference_sink.sorted_cycles());
    expect_stats_equal(stats, reference_stats);
  }
}

TEST(StreamSnapshot, RoundTripWithReorderBufferInFlight) {
  const TemporalGraph graph = test_graph();
  StreamOptions options = engine_options();
  options.reorder_slack = 40;
  // Reverse consecutive pairs: every arrival is at most one edge's timestamp
  // gap out of order, well within the slack, so the reorder buffer is busy
  // at every point of the stream — including the snapshot point.
  const auto sorted = graph.edges_by_time();
  std::vector<TemporalEdge> feed(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i + 1 < feed.size(); i += 2) {
    if (feed[i + 1].ts - feed[i].ts <= options.reorder_slack) {
      std::swap(feed[i], feed[i + 1]);
    }
  }

  CollectingSink reference_sink;
  StreamStats reference_stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &reference_sink);
    for (const auto& e : feed) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    reference_stats = engine.stats();
  });
  ASSERT_EQ(reference_stats.late_edges_rejected, 0u);

  const std::size_t break_at = 151;
  std::stringstream snapshot;
  CollectingSink sink;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &sink);
    for (std::size_t i = 0; i < break_at; ++i) {
      engine.push(feed[i].src, feed[i].dst, feed[i].ts);
    }
    EXPECT_GT(engine.stats().reorder_buffered, 0u);
    engine.save_snapshot(snapshot);
  });
  StreamStats stats;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &sink);
    engine.restore_snapshot(snapshot);
    for (std::size_t i = engine.edges_pushed(); i < feed.size(); ++i) {
      engine.push(feed[i].src, feed[i].dst, feed[i].ts);
    }
    engine.flush();
    stats = engine.stats();
  });
  EXPECT_EQ(sink.sorted_cycles(), reference_sink.sorted_cycles());
  expect_stats_equal(stats, reference_stats);
}

TEST(StreamSnapshot, MultiWindowRoundTrip) {
  const TemporalGraph graph = test_graph();
  StreamOptions options = engine_options();
  options.windows = {kWindow / 2, kWindow};

  CollectingSink reference_sink;
  StreamStats reference_stats;
  run_reference(graph, options, reference_sink, reference_stats);
  CollectingSink sink;
  StreamStats stats;
  run_interrupted(graph, options, 175, sink, stats);
  EXPECT_EQ(sink.sorted_cycles(), reference_sink.sorted_cycles());
  expect_stats_equal(stats, reference_stats);
}

TEST(StreamSnapshot, FileRoundTrip) {
  const TemporalGraph graph = test_graph();
  const StreamOptions options = engine_options();
  const std::string path =
      testing::TempDir() + "parcycle_stream_snapshot_test.snap";
  const auto edges = graph.edges_by_time();
  CollectingSink sink;
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &sink);
    for (std::size_t i = 0; i < 100; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    engine.save_snapshot_file(path);
  });
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, &sink);
    engine.restore_snapshot_file(path);
    EXPECT_EQ(engine.edges_pushed(), 100u);
    for (std::size_t i = 100; i < edges.size(); ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    engine.flush();
  });
  CollectingSink reference_sink;
  StreamStats reference_stats;
  run_reference(graph, options, reference_sink, reference_stats);
  EXPECT_EQ(sink.sorted_cycles(), reference_sink.sorted_cycles());
  std::remove(path.c_str());
}

TEST(StreamSnapshot, RetentionCompactionDropsDeadWindow) {
  const TemporalGraph graph = test_graph();
  const StreamOptions options = engine_options();  // batch 32, window 150
  const auto edges = graph.edges_by_time();
  std::stringstream full_snap;
  std::stringstream compact_snap;
  StreamStats live_stats;
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (std::size_t i = 0; i < 96; ++i) {  // 3 full batches, pending empty
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    ASSERT_GT(engine.stats().live_edges, 0u);
    engine.save_snapshot(full_snap);
    // A pending arrival a full retention beyond the newest edge makes every
    // currently-live edge unreachable for all future searches: the next
    // snapshot must not serialise that dead window.
    engine.push(edges[95].src, edges[95].dst, edges[95].ts + 10 * kWindow);
    live_stats = engine.stats();
    engine.save_snapshot(compact_snap);
  });
  // Size assertion: the compacted snapshot carries one pending edge instead
  // of the whole stale window, so it must be strictly smaller even though it
  // captured MORE of the stream.
  EXPECT_LT(compact_snap.str().size(), full_snap.str().size());
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    engine.restore_snapshot(compact_snap);
    const StreamStats restored = engine.stats();
    EXPECT_EQ(restored.edges_pushed, live_stats.edges_pushed);
    EXPECT_EQ(restored.live_edges, 0u);  // dead window accounted as expired
    EXPECT_EQ(restored.expired_edges, restored.edges_ingested);
    engine.flush();  // the far-future pending edge still ingests cleanly
    EXPECT_EQ(engine.stats().edges_ingested, live_stats.edges_ingested + 1);
  });
}

// ---------------------------------------------------------------------------
// Rejection: truncation, corruption, configuration mismatch
// ---------------------------------------------------------------------------

std::string snapshot_bytes_of_partial_run(const StreamOptions& options) {
  const TemporalGraph graph = test_graph();
  const auto edges = graph.edges_by_time();
  std::stringstream snapshot;
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    for (std::size_t i = 0; i < 150; ++i) {
      engine.push(edges[i].src, edges[i].dst, edges[i].ts);
    }
    engine.save_snapshot(snapshot);
  });
  return snapshot.str();
}

void expect_restore_rejected(const std::string& bytes,
                             const StreamOptions& options) {
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    std::stringstream in(bytes);
    EXPECT_THROW(engine.restore_snapshot(in), std::runtime_error);
  });
}

TEST(StreamSnapshot, TruncationRejectedAtEveryRegion) {
  const StreamOptions options = engine_options();
  const std::string bytes = snapshot_bytes_of_partial_run(options);
  ASSERT_GT(bytes.size(), 64u);
  // Prefix lengths covering each header field boundary, mid-payload, and
  // one-byte-short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{4}, std::size_t{8},
        std::size_t{15}, std::size_t{16}, std::size_t{24}, std::size_t{63},
        bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE(keep);
    expect_restore_rejected(bytes.substr(0, keep), options);
  }
}

TEST(StreamSnapshot, CorruptionRejected) {
  const StreamOptions options = engine_options();
  const std::string bytes = snapshot_bytes_of_partial_run(options);

  {
    std::string bad = bytes;  // flip one payload byte: checksum mismatch
    bad[bytes.size() / 2] = static_cast<char>(bad[bytes.size() / 2] ^ 0x40);
    expect_restore_rejected(bad, options);
  }
  {
    std::string bad = bytes;  // bad magic
    bad[0] = 'X';
    expect_restore_rejected(bad, options);
  }
  {
    std::string bad = bytes;  // unsupported version
    bad[4] = static_cast<char>(0x7f);
    expect_restore_rejected(bad, options);
  }
  {
    std::string bad = bytes;  // implausible payload size
    bad[8] = static_cast<char>(0xff);
    bad[14] = static_cast<char>(0xff);
    expect_restore_rejected(bad, options);
  }
}

TEST(StreamSnapshot, WindowLaneMismatchRejected) {
  const std::string bytes = snapshot_bytes_of_partial_run(engine_options());
  StreamOptions different = engine_options();
  different.window = kWindow * 2;
  expect_restore_rejected(bytes, different);
  StreamOptions more_lanes = engine_options();
  more_lanes.windows = {kWindow, kWindow * 2};
  expect_restore_rejected(bytes, more_lanes);
}

TEST(StreamSnapshot, RestoreRequiresFreshEngine) {
  const StreamOptions options = engine_options();
  const std::string bytes = snapshot_bytes_of_partial_run(options);
  Scheduler::with_pool(1, [&](Scheduler& sched) {
    StreamEngine engine(options, sched, nullptr);
    engine.push(0, 1, 5);
    std::stringstream in(bytes);
    EXPECT_THROW(engine.restore_snapshot(in), std::runtime_error);
  });
}

}  // namespace
}  // namespace parcycle
