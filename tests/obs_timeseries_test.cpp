// Time-series sampler: ring wraparound, rate derivation against
// hand-computed values (sample_once with synthetic timestamps makes the
// arithmetic exact), rolling-p99 presence, SLO parsing/burn arithmetic
// pinned to its documented formula, the sampler→SLO wiring, and the
// adaptive degraded-budget hint (counter in WorkCounters, floor semantics).
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/slo.hpp"
#include "stream/engine.hpp"
#include "support/scheduler.hpp"

namespace parcycle {
namespace {

TEST(SeriesRing, WrapsAroundKeepingNewestSamples) {
  SeriesRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.latest(), 0.0);
  for (int i = 0; i < 10; ++i) {
    ring.push(static_cast<std::uint64_t>(i) * 100, static_cast<double>(i));
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.latest(), 9.0);
  const std::vector<SeriesRing::Sample> samples = ring.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest first: pushes 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(samples[i].value, static_cast<double>(6 + i));
    EXPECT_EQ(samples[i].t_ns, (6 + i) * 100u);
  }
}

TEST(SeriesRing, ZeroCapacityClampsToOne) {
  SeriesRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(1, 1.0);
  ring.push(2, 2.0);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.latest(), 2.0);
}

// 5 disjoint 2-cycles pushed between two synthetic ticks 2 seconds apart:
// every rate is exact, no clock reads involved.
TEST(TimeSeriesSampler, RateDerivationMatchesHandComputedValues) {
  Scheduler sched(2);
  StreamOptions options;
  options.window = 1'000'000;
  options.batch_size = 1024;  // no auto-batching; flush() drives the work
  options.max_cycle_length = 8;
  StreamEngine engine(options, sched, nullptr);
  TimeSeriesSampler sampler(engine, sched, {});  // never start()ed

  sampler.sample_once(1'000'000'000);  // baseline: no rates derivable yet
  EXPECT_EQ(sampler.ticks(), 1u);
  EXPECT_TRUE(sampler.series("edges_per_sec").empty());

  for (int i = 0; i < 5; ++i) {
    const auto a = static_cast<VertexId>(2 * i);
    const auto b = static_cast<VertexId>(2 * i + 1);
    engine.push(a, b, 2 * i);
    engine.push(b, a, 2 * i + 1);  // closes one 2-cycle per pair
  }
  engine.flush();
  ASSERT_EQ(engine.stats().edges_pushed, 10u);
  ASSERT_EQ(engine.stats().cycles_found, 5u);

  sampler.sample_once(3'000'000'000);  // dt = exactly 2 s
  EXPECT_EQ(sampler.ticks(), 2u);
  ASSERT_EQ(sampler.series("edges_per_sec").size(), 1u);
  EXPECT_EQ(sampler.series("edges_per_sec").back().value, 5.0);
  EXPECT_EQ(sampler.series("cycles_per_sec").back().value, 2.5);
  EXPECT_EQ(sampler.series("shed_per_sec").back().value, 0.0);
  EXPECT_EQ(sampler.series("overload_level").back().value, 0.0);

  // Searches ran between the ticks, so the per-tick latency delta is
  // non-empty and the rolling p99 materialises.
  ASSERT_GE(sampler.series("p99_search_ns").size(), 1u);
  EXPECT_GT(sampler.series("p99_search_ns").back().value, 0.0);

  EXPECT_THROW(sampler.series("no_such_series"), std::out_of_range);

  const std::string prom = sampler.render_prometheus();
  EXPECT_NE(prom.find("parcycle_build_info"), std::string::npos);
  EXPECT_NE(prom.find("parcycle_uptime_seconds"), std::string::npos);
  EXPECT_NE(prom.find("parcycle_stream_edges_per_sec"), std::string::npos);
  EXPECT_NE(sampler.render_statusz().find("parcycle statusz"),
            std::string::npos);
  EXPECT_TRUE(sampler.health().ok);
}

TEST(Slo, ParseAcceptsTheDocumentedSyntax) {
  EXPECT_TRUE(SloTracker::parse("").empty());
  const std::vector<SloObjective> parsed =
      SloTracker::parse("p99_search_ns<2000000@0.1;edges_per_sec>50");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].metric, "p99_search_ns");
  EXPECT_TRUE(parsed[0].less_than);
  EXPECT_EQ(parsed[0].threshold, 2000000.0);
  EXPECT_EQ(parsed[0].allowed_fraction, 0.1);
  EXPECT_EQ(parsed[1].metric, "edges_per_sec");
  EXPECT_FALSE(parsed[1].less_than);
  EXPECT_EQ(parsed[1].threshold, 50.0);
  EXPECT_EQ(parsed[1].allowed_fraction, 0.01);  // the documented default
  EXPECT_EQ(parsed[0].spec().rfind("p99_search_ns<", 0), 0u);
}

TEST(Slo, ParseRejectsBadSpecs) {
  EXPECT_THROW(SloTracker::parse("bogus_metric<1"), std::invalid_argument);
  EXPECT_THROW(SloTracker::parse("p99_search_ns"), std::invalid_argument);
  EXPECT_THROW(SloTracker::parse("p99_search_ns<"), std::invalid_argument);
  EXPECT_THROW(SloTracker::parse("p99_search_ns<abc"),
               std::invalid_argument);
  EXPECT_THROW(SloTracker::parse("p99_search_ns=5"), std::invalid_argument);
  EXPECT_THROW(SloTracker::parse("shed_fraction<0.1@0"),
               std::invalid_argument);
  EXPECT_THROW(SloTracker::parse("shed_fraction<0.1@1.5"),
               std::invalid_argument);
}

// burn_ratio = (violated/total)/allowed, pinned: 4 ticks at allowed=0.25
// with 2 violations burn exactly 2.0; an absent metric counts the tick but
// never violates.
TEST(Slo, BurnArithmeticIsPinned) {
  SloTracker tracker(SloTracker::parse("p99_search_ns<100@0.25"));
  tracker.evaluate({{"p99_search_ns", 50.0}});   // ok
  tracker.evaluate({{"p99_search_ns", 150.0}});  // violated
  tracker.evaluate({{"p99_search_ns", 150.0}});  // violated
  tracker.evaluate({});                          // absent: counted, ok
  std::vector<SloTracker::Status> status = tracker.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].ticks_total, 4u);
  EXPECT_EQ(status[0].ticks_violated, 2u);
  EXPECT_EQ(status[0].burn_ratio, 2.0);
  EXPECT_FALSE(status[0].ok);

  // Exactly-spent budget is still ok: burn == 1.0 is the boundary.
  SloTracker boundary(SloTracker::parse("shed_fraction<0.5@0.5"));
  boundary.evaluate({{"shed_fraction", 0.9}});  // violated
  boundary.evaluate({{"shed_fraction", 0.1}});  // ok
  status = boundary.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].burn_ratio, 1.0);
  EXPECT_TRUE(status[0].ok);

  // Greater-than objectives violate below the threshold.
  SloTracker above(SloTracker::parse("edges_per_sec>10@0.5"));
  above.evaluate({{"edges_per_sec", 5.0}});
  status = above.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].ticks_violated, 1u);
  EXPECT_FALSE(status[0].ok);
}

TEST(TimeSeriesSampler, EvaluatesSloObjectivesPerTick) {
  Scheduler sched(2);
  StreamOptions options;
  options.window = 1'000'000;
  options.batch_size = 1024;
  StreamEngine engine(options, sched, nullptr);
  TimeSeriesOptions ts_options;
  // An absurd throughput floor: every tick that derives a rate violates.
  ts_options.slo_spec = "edges_per_sec>1000000@0.5";
  TimeSeriesSampler sampler(engine, sched, ts_options);

  sampler.sample_once(1'000'000'000);  // baseline: metric absent, no violation
  engine.push(0, 1, 0);
  engine.push(1, 0, 1);
  engine.flush();
  sampler.sample_once(2'000'000'000);  // rate = 2 edges/s: violated
  std::vector<SloTracker::Status> status = sampler.slo_status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].ticks_total, 2u);
  EXPECT_EQ(status[0].ticks_violated, 1u);
  EXPECT_EQ(status[0].burn_ratio, 1.0);  // (1/2)/0.5: budget exactly spent
  EXPECT_TRUE(status[0].ok);

  sampler.sample_once(3'000'000'000);  // rate = 0: violated again
  status = sampler.slo_status();
  EXPECT_EQ(status[0].ticks_total, 3u);
  EXPECT_EQ(status[0].ticks_violated, 2u);
  EXPECT_FALSE(status[0].ok);  // (2/3)/0.5 > 1

  EXPECT_NE(sampler.render_prometheus().find("parcycle_slo_burn_ratio"),
            std::string::npos);
}

TEST(TimeSeriesSampler, RejectsBadSloSpecAtConstruction) {
  Scheduler sched(1);
  StreamOptions options;
  options.window = 1'000'000;
  StreamEngine engine(options, sched, nullptr);
  TimeSeriesOptions ts_options;
  ts_options.slo_spec = "not_a_metric<1";
  EXPECT_THROW(
      { TimeSeriesSampler sampler(engine, sched, ts_options); },
      std::invalid_argument);
}

// batch_size=9 with overload_high_watermark=3 jumps the ladder exactly
// 9/3 = 3 rungs at the first batch boundary — straight to kTightenBudgets —
// so that batch's searches run degraded. A hint above the static degraded
// wall budget widens it (and counts applications); a hint below the static
// floor must be ignored.
TEST(TimeSeriesSampler, AdaptiveHintWidensDegradedBudgetAboveStaticFloor) {
  Scheduler sched(2);
  StreamOptions options;
  options.window = 1'000'000;
  options.batch_size = 9;
  options.overload_high_watermark = 3;
  ASSERT_GT(options.degraded_budget.wall_ns, 0u);  // finite static floor

  {
    StreamEngine engine(options, sched, nullptr);
    engine.set_degraded_wall_hint_ns(1'000'000'000);  // above the floor
    for (int i = 0; i < 9; ++i) {
      engine.push(static_cast<VertexId>(i % 3),
                  static_cast<VertexId>((i + 1) % 3), i);
    }
    EXPECT_EQ(engine.overload_level(), OverloadLevel::kTightenBudgets);
    EXPECT_GT(engine.stats().work.adaptive_budget_applications, 0u);
  }
  {
    StreamEngine engine(options, sched, nullptr);
    engine.set_degraded_wall_hint_ns(1);  // below the floor: never applied
    for (int i = 0; i < 9; ++i) {
      engine.push(static_cast<VertexId>(i % 3),
                  static_cast<VertexId>((i + 1) % 3), i);
    }
    EXPECT_EQ(engine.overload_level(), OverloadLevel::kTightenBudgets);
    EXPECT_EQ(engine.stats().work.adaptive_budget_applications, 0u);
  }
}

}  // namespace
}  // namespace parcycle
