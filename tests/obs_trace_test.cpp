// TraceRecorder + Chrome exporter: ring wraparound keeps the newest events,
// per-worker export order is monotonic, a disabled recorder records nothing
// and allocates nothing on the hot path, and the exporter emits valid JSON
// under real multi-threaded scheduler runs (1/2/4 workers). The suite carries
// the `parallel` label so the TSan job and the scheduler-stress loop cover
// the recorder's owner-writes/quiescent-reads contract.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_export.hpp"
#include "support/scheduler.hpp"

// Global allocation counter: proves the disabled-recorder hot path touches
// the allocator not at all (record_* must branch out before any push).
//
// GCC sometimes inlines the free-based replacement delete below and then
// pairs it against the *default* operator new signature, reporting a
// spurious mismatched-new-delete; the replacement new is malloc-based, so
// the new/free pairing is in fact correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc{};
}

// The nothrow variant must be replaced alongside the throwing one: libstdc++'s
// temporary buffers (std::stable_sort in the exporter) allocate through it but
// deallocate through plain operator delete, so a malloc-based delete paired
// with the default nothrow new is an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace parcycle {
namespace {

TEST(TraceRecorder, RecordsSpansInstantsAndCounters) {
  TraceRecorder rec(2, 16, /*enabled=*/true);
  rec.record_span(0, TraceName::kTask, 100, 250, 7);
  rec.record_instant(1, TraceName::kSteal, 300, 0);
  rec.record_counter(0, TraceName::kLiveEdges, 400, 42);
  ASSERT_EQ(rec.recorded(0), 2u);
  ASSERT_EQ(rec.recorded(1), 1u);
  const auto w0 = rec.events(0);
  EXPECT_EQ(w0[0].type, TraceEventType::kSpan);
  EXPECT_EQ(w0[0].ts_ns, 100u);
  EXPECT_EQ(w0[0].dur_ns, 150u);
  EXPECT_EQ(w0[0].arg, 7u);
  EXPECT_EQ(w0[1].type, TraceEventType::kCounter);
  EXPECT_EQ(w0[1].arg, 42u);
  const auto w1 = rec.events(1);
  EXPECT_EQ(w1[0].type, TraceEventType::kInstant);
  EXPECT_EQ(w1[0].name, TraceName::kSteal);
}

TEST(TraceRecorder, WraparoundKeepsTheNewestEvents) {
  constexpr std::size_t kCapacity = 8;
  TraceRecorder rec(1, kCapacity, /*enabled=*/true);
  constexpr std::uint64_t kTotal = 20;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    rec.record_span(0, TraceName::kTask, i * 10, i * 10 + 5, i);
  }
  EXPECT_EQ(rec.recorded(0), kTotal);
  EXPECT_EQ(rec.dropped(0), kTotal - kCapacity);
  const auto events = rec.events(0);
  ASSERT_EQ(events.size(), kCapacity);
  // The retained window is exactly the last kCapacity records, oldest first.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(events[i].arg, kTotal - kCapacity + i) << "slot " << i;
  }
}

TEST(TraceRecorder, ExportedOrderIsMonotonicPerWorker) {
  TraceRecorder rec(1, 64, /*enabled=*/true);
  // Spans are recorded at END time, so a long-running span lands after
  // shorter ones it encloses; the exporter re-sorts by start.
  rec.record_span(0, TraceName::kTask, 50, 60);
  rec.record_span(0, TraceName::kWorkerBusy, 10, 100);
  rec.record_instant(0, TraceName::kSteal, 55);
  std::ostringstream out;
  write_chrome_trace(rec, out);
  const std::string json = out.str();
  // worker_busy (ts 10) must precede task (ts 50) and the instant (ts 55).
  const auto busy_pos = json.find("worker_busy");
  const auto task_pos = json.find("\"task\"");
  const auto steal_pos = json.find("\"steal\"");
  ASSERT_NE(busy_pos, std::string::npos);
  ASSERT_NE(task_pos, std::string::npos);
  ASSERT_NE(steal_pos, std::string::npos);
  EXPECT_LT(busy_pos, task_pos);
  EXPECT_LT(task_pos, steal_pos);
}

TEST(TraceRecorder, DisabledRecorderStaysEmptyAndAllocationFree) {
  TraceRecorder rec(2, 1024, /*enabled=*/false);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    rec.record_span(0, TraceName::kTask, i, i + 1);
    rec.record_instant(1, TraceName::kSteal, i);
    rec.record_counter(0, TraceName::kLiveEdges, i, i);
  }
  {
    // The RAII span helper must not even read the clock when disabled.
    TraceSpan span(&rec, 0, TraceName::kSearchRoot, 1);
  }
  TraceSpan null_span(nullptr, 0, TraceName::kSearchRoot);
  (void)null_span;
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(rec.recorded(0), 0u);
  EXPECT_EQ(rec.recorded(1), 0u);
  EXPECT_EQ(rec.dropped(0), 0u);
}

// The /tracez renderer, tested directly rather than through a live server:
// banner, per-worker retained/recorded/dropped line, one indented line per
// event with the right kind tag, and newest-N truncation from the front.
TEST(TraceRecorder, RenderTracezTextShowsNewestEventsPerWorker) {
  TraceRecorder rec(2, 16, /*enabled=*/true);
  rec.record_span(0, TraceName::kTask, 1000, 251000, 7);
  rec.record_instant(0, TraceName::kSteal, 300000, 0);
  rec.record_counter(1, TraceName::kLiveEdges, 400000, 42);
  const std::string text = render_tracez_text(rec, 32);
  EXPECT_NE(text.find("tracez: newest 32 events per worker "
                      "(recorder enabled)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("worker 0: retained=2 recorded=2 dropped=0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("worker 1: retained=1 recorded=1 dropped=0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("span    task ts_us=1.000 dur_us=250.000 arg=7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("instant steal ts_us=300.000 arg=0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("counter live_edges ts_us=400.000 value=42"),
            std::string::npos)
      << text;

  // last_n=1 keeps only the NEWEST event of worker 0: the steal instant
  // survives, the older task span is cut.
  const std::string tail = render_tracez_text(rec, 1);
  EXPECT_NE(tail.find("instant steal"), std::string::npos) << tail;
  EXPECT_EQ(tail.find("span    task"), std::string::npos) << tail;
  // Truncation is display-only: the counter line still reports both.
  EXPECT_NE(tail.find("worker 0: retained=2 recorded=2 dropped=0"),
            std::string::npos)
      << tail;

  // A disabled recorder renders honestly as empty, not as an error.
  TraceRecorder off(1, 16, /*enabled=*/false);
  const std::string disabled = render_tracez_text(off, 32);
  EXPECT_NE(disabled.find("(recorder disabled)"), std::string::npos)
      << disabled;
  EXPECT_NE(disabled.find("worker 0: retained=0 recorded=0 dropped=0"),
            std::string::npos)
      << disabled;
}

TEST(TraceRecorder, ClearResetsAllRings) {
  TraceRecorder rec(2, 8, /*enabled=*/true);
  for (int i = 0; i < 20; ++i) {
    rec.record_instant(0, TraceName::kSteal, i);
    rec.record_instant(1, TraceName::kSteal, i);
  }
  rec.clear();
  EXPECT_EQ(rec.recorded(0), 0u);
  EXPECT_EQ(rec.recorded(1), 0u);
  EXPECT_EQ(rec.dropped(1), 0u);
  EXPECT_TRUE(rec.events(0).empty());
}

// Minimal structural JSON check (no parser dependency): balanced braces and
// brackets outside strings, and the expected top-level key.
void expect_balanced_json(const std::string& json) {
  ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

// End-to-end: a real scheduler run under per-task timing fills the rings
// from multiple worker threads; the export after with_pool returns (pool
// joined) must be well-formed and contain task spans.
TEST(TraceRecorder, SchedulerRunsExportValidJsonAcrossThreadCounts) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    TraceRecorder rec(threads, 4096, /*enabled=*/true);
    Scheduler::with_pool(
        threads, SchedulerOptions{.timing = TimingMode::kPerTask},
        [&](Scheduler& sched) {
          sched.set_tracer(&rec);
          std::atomic<int> counter{0};
          TaskGroup group(sched);
          for (int i = 0; i < 2000; ++i) {
            group.spawn([&counter] {
              counter.fetch_add(1, std::memory_order_relaxed);
            });
          }
          group.wait();
          ASSERT_EQ(counter.load(), 2000);
        });
    std::uint64_t total = 0;
    for (unsigned w = 0; w < threads; ++w) {
      total += rec.recorded(w);
    }
    EXPECT_GE(total, 2000u) << threads << " threads";
    std::ostringstream out;
    write_chrome_trace(rec, out);
    const std::string json = out.str();
    expect_balanced_json(json);
    EXPECT_NE(json.find("\"task\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
  }
}

// Tracing under the default transition timing: no per-task spans, but the
// busy intervals and steals recorded at transitions still land in the rings.
TEST(TraceRecorder, TransitionTimingRecordsBusySpans) {
  TraceRecorder rec(2, 4096, /*enabled=*/true);
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    sched.set_tracer(&rec);
    TaskGroup group(sched);
    std::atomic<int> counter{0};
    for (int i = 0; i < 500; ++i) {
      group.spawn([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    group.wait();
  });
  std::ostringstream out;
  write_chrome_trace(rec, out);
  EXPECT_NE(out.str().find("worker_busy"), std::string::npos);
}

}  // namespace
}  // namespace parcycle
