// Introspection HTTP server: request-line parsing (malformed, oversized,
// wrong method/version), handler dispatch over real loopback sockets,
// ephemeral-port allocation and re-bind, /healthz tracking the overload
// ladder, and — the reason this suite carries the parallel label — a client
// thread scraping every endpoint while the engine ingests live (the TSan
// contract behind enable_concurrent_stats / concurrent_reads).
#include "obs/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "stream/engine.hpp"
#include "support/scheduler.hpp"

namespace parcycle {
namespace {

// Minimal blocking HTTP client: one request, read to EOF (the server always
// answers Connection: close). Returns the full response text, "" on socket
// failure.
std::string raw_round_trip(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path,
                     int* status = nullptr) {
  const std::string response = raw_round_trip(
      port, "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n");
  if (status != nullptr) {
    *status = 0;
    if (response.rfind("HTTP/1.1 ", 0) == 0 && response.size() >= 12) {
      *status = std::atoi(response.c_str() + 9);
    }
  }
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

TEST(ParseHttpRequest, AcceptsWellFormedGetAndStripsQuery) {
  std::string method;
  std::string path;
  EXPECT_EQ(parse_http_request("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
                               &method, &path),
            0);
  EXPECT_EQ(method, "GET");
  EXPECT_EQ(path, "/metrics");

  EXPECT_EQ(parse_http_request("GET /statusz?verbose=1 HTTP/1.0\r\n\r\n",
                               &method, &path),
            0);
  EXPECT_EQ(path, "/statusz");

  // Non-GET methods parse fine; the method policy (405) is dispatch's job.
  EXPECT_EQ(parse_http_request("POST /metrics HTTP/1.1\r\n\r\n", &method,
                               &path),
            0);
  EXPECT_EQ(method, "POST");
}

TEST(ParseHttpRequest, RejectsMalformedRequestLines) {
  std::string method;
  std::string path;
  EXPECT_EQ(parse_http_request("", &method, &path), 400);
  EXPECT_EQ(parse_http_request("GARBAGE\r\n\r\n", &method, &path), 400);
  EXPECT_EQ(parse_http_request("GET\r\n\r\n", &method, &path), 400);
  EXPECT_EQ(parse_http_request("GET /x\r\n\r\n", &method, &path), 400);
  EXPECT_EQ(parse_http_request("GET  /x HTTP/1.1\r\n\r\n", &method, &path),
            400);  // double space = empty target
  EXPECT_EQ(parse_http_request("GET /a b HTTP/1.1\r\n\r\n", &method, &path),
            400);  // space inside target
  EXPECT_EQ(parse_http_request("GET metrics HTTP/1.1\r\n\r\n", &method,
                               &path),
            400);  // target must be absolute
  EXPECT_EQ(parse_http_request("GET /x SMTP/1.1\r\n\r\n", &method, &path),
            400);
}

TEST(ParseHttpRequest, RejectsUnsupportedHttpVersions) {
  std::string method;
  std::string path;
  EXPECT_EQ(parse_http_request("GET /x HTTP/2.0\r\n\r\n", &method, &path),
            505);
  EXPECT_EQ(parse_http_request("GET /x HTTP/0.9\r\n\r\n", &method, &path),
            505);
}

TEST(HttpStatusReason, CoversServedStatuses) {
  EXPECT_STREQ(http_status_reason(200), "OK");
  EXPECT_STREQ(http_status_reason(404), "Not Found");
  EXPECT_STREQ(http_status_reason(431), "Request Header Fields Too Large");
  EXPECT_STREQ(http_status_reason(503), "Service Unavailable");
}

TEST(IntrospectionServer, DispatchesHandlersAndAnswersErrors) {
  IntrospectionServer server;  // loopback, ephemeral port
  server.add_handler("/hello", [] {
    HttpResponse r;
    r.body = "world\n";
    return r;
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  int status = 0;
  EXPECT_EQ(http_get(server.port(), "/hello", &status), "world\n");
  EXPECT_EQ(status, 200);
  // Query strings route to the same handler.
  EXPECT_EQ(http_get(server.port(), "/hello?x=1", &status), "world\n");
  EXPECT_EQ(status, 200);

  http_get(server.port(), "/missing", &status);
  EXPECT_EQ(status, 404);

  std::string response = raw_round_trip(
      server.port(), "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);

  response = raw_round_trip(server.port(), "NOT A REQUEST\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);

  response = raw_round_trip(server.port(), "GET /hello HTTP/2.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 505"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectionServer, OversizedRequestGets431) {
  IntrospectionOptions options;
  options.max_request_bytes = 512;
  IntrospectionServer server(options);
  server.add_handler("/x", [] { return HttpResponse{}; });
  ASSERT_TRUE(server.start());
  // 4 KiB of header bytes with no terminating blank line: the server must
  // cut the read off at max_request_bytes and answer 431.
  std::string request = "GET /x HTTP/1.1\r\n";
  request += "X-Padding: " + std::string(4096, 'a') + "\r\n\r\n";
  const std::string response = raw_round_trip(server.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos);
  // And an ordinary request afterwards still succeeds.
  int status = 0;
  http_get(server.port(), "/x", &status);
  EXPECT_EQ(status, 200);
}

TEST(IntrospectionServer, EphemeralPortCanBeReboundAfterStop) {
  IntrospectionOptions options;
  std::uint16_t first_port = 0;
  {
    IntrospectionServer server(options);
    server.add_handler("/p", [] { return HttpResponse{}; });
    ASSERT_TRUE(server.start());
    first_port = server.port();
    ASSERT_NE(first_port, 0);
    server.stop();
  }
  // SO_REUSEADDR: the port just vacated (possibly with TIME_WAIT remnants
  // from the requests above) must be immediately bindable.
  options.port = first_port;
  IntrospectionServer server(options);
  server.add_handler("/p", [] {
    HttpResponse r;
    r.body = "rebound\n";
    return r;
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_EQ(server.port(), first_port);
  int status = 0;
  EXPECT_EQ(http_get(server.port(), "/p", &status), "rebound\n");
  EXPECT_EQ(status, 200);
  // stop() is idempotent.
  server.stop();
  server.stop();
}

TEST(IntrospectionServer, HealthzFlipsWithOverloadLadder) {
  Scheduler sched(2);
  StreamOptions options;
  options.window = 1'000'000;
  options.batch_size = 8;
  options.max_cycle_length = 4;
  // occupancy/high = 4 rungs at the first batch: straight to kShed.
  options.overload_high_watermark = 2;
  StreamEngine engine(options, sched, nullptr);
  TimeSeriesSampler sampler(engine, sched, {});
  IntrospectionServer server;
  server.add_handler("/healthz", [&sampler] {
    const TimeSeriesSampler::Health health = sampler.health();
    HttpResponse r;
    r.status = health.ok ? 200 : 503;
    r.body = health.text;
    return r;
  });
  ASSERT_TRUE(server.start());

  int status = 0;
  std::string body = http_get(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.rfind("ok", 0), 0u) << body;

  for (int i = 0; i < 8; ++i) {
    engine.push(static_cast<VertexId>(i % 4),
                static_cast<VertexId>((i + 1) % 4), i);
  }
  ASSERT_EQ(engine.overload_level(), OverloadLevel::kShed);
  body = http_get(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 503);
  EXPECT_EQ(body.rfind("shedding", 0), 0u) << body;

  // Empty flushes are batch boundaries: the ladder steps down one rung per
  // overload_recover_batches calm batches until /healthz recovers.
  for (int i = 0; i < 64 && engine.overload_level() != OverloadLevel::kNormal;
       ++i) {
    engine.flush();
  }
  ASSERT_EQ(engine.overload_level(), OverloadLevel::kNormal);
  body = http_get(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.rfind("ok", 0), 0u) << body;
}

// The live-scrape contract, all layers at once: workers searching and
// recording spans, the sampler thread snapshotting stats, the serving thread
// rendering every endpoint, and a client thread scraping — while the main
// thread keeps pushing. Run under TSan in the scheduler-stress job.
TEST(IntrospectionServer, ConcurrentScrapeDuringLiveIngest) {
  TraceRecorder recorder(4, 1u << 12, /*enabled=*/true,
                         /*concurrent_reads=*/true);
  Scheduler sched(4);
  sched.set_tracer(&recorder);
  StreamOptions options;
  options.window = 1'000'000;
  options.batch_size = 16;
  options.max_cycle_length = 4;
  StreamEngine engine(options, sched, nullptr);
  TimeSeriesOptions ts_options;
  ts_options.interval_ms = 2;
  ts_options.slo_spec = "shed_fraction<0.5";
  TimeSeriesSampler sampler(engine, sched, ts_options);
  sampler.start();
  IntrospectionServer server;
  server.add_handler("/metrics", [&sampler] {
    HttpResponse r;
    r.body = sampler.render_prometheus();
    return r;
  });
  server.add_handler("/statusz", [&sampler] {
    HttpResponse r;
    r.body = sampler.render_statusz();
    return r;
  });
  server.add_handler("/healthz", [&sampler] {
    const TimeSeriesSampler::Health health = sampler.health();
    HttpResponse r;
    r.status = health.ok ? 200 : 503;
    r.body = health.text;
    return r;
  });
  server.add_handler("/tracez", [&recorder] {
    HttpResponse r;
    r.body = render_tracez_text(recorder, 8);
    return r;
  });
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> bad{0};
  std::thread client([&] {
    const char* const paths[] = {"/metrics", "/statusz", "/healthz",
                                 "/tracez"};
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      int status = 0;
      const std::string body =
          http_get(server.port(), paths[i++ % 4], &status);
      if (status == 200 || status == 503) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      } else {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
      if (status == 200 && body.empty()) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int i = 0; i < 4000; ++i) {
    engine.push(static_cast<VertexId>(i % 32),
                static_cast<VertexId>((i * 7 + 1) % 32), i);
  }
  engine.flush();
  stop.store(true, std::memory_order_relaxed);
  client.join();
  sampler.stop();
  server.stop();

  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(engine.stats().edges_ingested, 4000u);
  // The sampler observed the run too.
  EXPECT_GE(sampler.ticks(), 1u);
  EXPECT_NE(sampler.render_prometheus().find("parcycle_stream_edges_pushed"),
            std::string::npos);
}

}  // namespace
}  // namespace parcycle
