#include "support/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace parcycle {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.next() == b.next());
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(1), 0u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(2024);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    histogram[rng.bounded(kBuckets)] += 1;
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int count : histogram) {
    // 5-sigma band for a binomial bucket.
    EXPECT_NEAR(count, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace parcycle
