// Log2Histogram percentile math (the semantics StreamStats latency
// percentiles have always used — pinned here so a "cleanup" can't silently
// shift every latency baseline) and the MetricsRegistry surface: naming,
// set-semantics re-import, Prometheus rendering, and exact agreement with
// the source structs it imports.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "obs/histogram.hpp"
#include "stream/engine.hpp"
#include "support/scheduler.hpp"

namespace parcycle {
namespace {

TEST(Log2Histogram, BucketIndexAndBoundsAreExact) {
  // Bucket b holds values needing exactly b bits: [2^(b-1), 2^b - 1].
  EXPECT_EQ(Log2Histogram::bucket_index(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_index(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_index(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_index(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_index(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_index(7), 3);
  EXPECT_EQ(Log2Histogram::bucket_index(8), 4);
  EXPECT_EQ(Log2Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Log2Histogram::bucket_index(1024), 11);
  // The top bucket absorbs the >= 2^63 tail.
  EXPECT_EQ(Log2Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            Log2Histogram::kBuckets - 1);

  EXPECT_EQ(Log2Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(10), 1023u);
}

TEST(Log2Histogram, EmptyHistogramReportsZero) {
  const Log2Histogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.percentile(0.0), 0u);
  EXPECT_EQ(hist.percentile(0.5), 0u);
  EXPECT_EQ(hist.percentile(0.99), 0u);
}

TEST(Log2Histogram, SingleSamplePercentiles) {
  Log2Histogram hist;
  hist.record(5);  // bucket 3, upper bound 7
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.sum, 5u);
  EXPECT_EQ(hist.max, 5u);
  // Any q < 1 crosses in the sample's bucket and reports its upper bound.
  EXPECT_EQ(hist.percentile(0.0), 7u);
  EXPECT_EQ(hist.percentile(0.5), 7u);
  EXPECT_EQ(hist.percentile(0.99), 7u);
  // q == 1.0: rank == count, never crossed — the saturated sentinel (the
  // pre-obs stream code had the same fallthrough; callers use max instead).
  EXPECT_EQ(hist.percentile(1.0), std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, PercentileCrossesAtExactBucketBoundaries) {
  Log2Histogram hist;
  // 10 samples: 4 in bucket 1 (value 1), 4 in bucket 2 (values 2..3), 2 in
  // bucket 4 (value 8).
  for (int i = 0; i < 4; ++i) hist.record(1);
  for (int i = 0; i < 2; ++i) hist.record(2);
  for (int i = 0; i < 2; ++i) hist.record(3);
  for (int i = 0; i < 2; ++i) hist.record(8);
  ASSERT_EQ(hist.count(), 10u);
  // rank = q*10; crossing is strict (seen > rank):
  //   q=0.3 -> rank 3, seen 4 after bucket 1 -> ub 1
  //   q=0.4 -> rank 4, bucket 1's 4 not enough; bucket 2 -> ub 3
  //   q=0.79 -> rank 7, seen 8 after bucket 2 -> ub 3
  //   q=0.8 -> rank 8, needs bucket 4 -> ub 15
  EXPECT_EQ(hist.percentile(0.3), 1u);
  EXPECT_EQ(hist.percentile(0.4), 3u);
  EXPECT_EQ(hist.percentile(0.79), 3u);
  EXPECT_EQ(hist.percentile(0.8), 15u);
  EXPECT_EQ(hist.max, 8u);
  EXPECT_EQ(hist.sum, 4u * 1 + 2 * 2 + 2 * 3 + 2 * 8);
}

TEST(Log2Histogram, MergeAddsCountsSumAndMax) {
  Log2Histogram a;
  Log2Histogram b;
  a.record(1);
  a.record(100);
  b.record(7);
  b.record(70000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum, 1u + 100 + 7 + 70000);
  EXPECT_EQ(a.max, 70000u);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.sum, 0u);
  EXPECT_EQ(a.max, 0u);
}

TEST(MetricsRegistry, RendersPrometheusTextWithHelpAndType) {
  MetricsRegistry reg;
  reg.set_counter("demo_total", "", 42, "A demo counter");
  reg.set_gauge_u64("demo_live", "kind=\"a\"", 7, "A live gauge");
  reg.set_gauge("demo_seconds", "", 1.5, "Elapsed");
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("# HELP demo_total A demo counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("demo_live{kind=\"a\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_seconds gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds 1.5\n"), std::string::npos);
}

TEST(MetricsRegistry, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsRegistry reg;
  Log2Histogram hist;
  hist.record(1);
  hist.record(3);
  hist.record(3);
  reg.set_histogram("lat_ns", "", hist, "Latency");
  const std::string text = reg.render_text();
  // Cumulative: bucket le="1" holds 1, le="3" holds 3, then +Inf.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 3\n"), std::string::npos);
}

TEST(MetricsRegistry, ValueLookupAndSetSemantics) {
  MetricsRegistry reg;
  reg.set_counter("x_total", "", 5);
  EXPECT_EQ(reg.value_u64("x_total").value_or(0), 5u);
  EXPECT_FALSE(reg.value_u64("missing_total").has_value());
  // Re-set replaces (snapshot semantics), never accumulates.
  reg.set_counter("x_total", "", 9);
  EXPECT_EQ(reg.value_u64("x_total").value_or(0), 9u);
  ASSERT_EQ(reg.families().size(), 1u);
  EXPECT_EQ(reg.families()[0].samples.size(), 1u);
  // Distinct labels are distinct samples of one family.
  reg.set_counter("x_total", "worker=\"1\"", 3);
  EXPECT_EQ(reg.families()[0].samples.size(), 2u);
  EXPECT_EQ(reg.value_u64("x_total", "worker=\"1\"").value_or(0), 3u);
  reg.clear();
  EXPECT_TRUE(reg.families().empty());
}

TEST(MetricsRegistry, SchedulerImportMatchesWorkerStats) {
  MetricsRegistry reg;
  Scheduler::with_pool(
      2, SchedulerOptions{.timing = TimingMode::kPerTask},
      [&](Scheduler& sched) {
        TaskGroup group(sched);
        std::atomic<int> counter{0};
        for (int i = 0; i < 300; ++i) {
          group.spawn([&counter] {
            counter.fetch_add(1, std::memory_order_relaxed);
          });
        }
        group.wait();
        reg.import_scheduler(sched);
        std::uint64_t from_registry = 0;
        std::uint64_t from_stats = 0;
        const auto stats = sched.worker_stats();
        for (std::size_t w = 0; w < stats.size(); ++w) {
          from_registry +=
              reg.value_u64("parcycle_worker_tasks_executed_total",
                            "worker=\"" + std::to_string(w) + "\"")
                  .value_or(0);
          from_stats += stats[w].tasks_executed;
        }
        EXPECT_EQ(from_registry, from_stats);
        EXPECT_EQ(from_registry, 300u);
      });
  // kPerTask populated the merged latency histogram family.
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("parcycle_task_latency_ns_count 300\n"),
            std::string::npos);
}

TEST(MetricsRegistry, StreamImportMatchesStreamStats) {
  MetricsRegistry reg;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = 50;
    options.num_vertices_hint = 16;
    StreamEngine engine(options, sched, nullptr);
    // A small triangle-rich feed: i -> i+1 plus periodic back edges.
    for (int t = 0; t < 400; ++t) {
      const auto src = static_cast<VertexId>(t % 8);
      const auto dst = static_cast<VertexId>((t + 1) % 8);
      engine.push(src, dst, t);
      if (t % 5 == 0) {
        engine.push(dst, src, t);
      }
    }
    engine.flush();
    const StreamStats stats = engine.stats();
    reg.import_stream(stats);
    EXPECT_EQ(reg.value_u64("parcycle_stream_edges_pushed_total").value_or(0),
              stats.edges_pushed);
    EXPECT_EQ(
        reg.value_u64("parcycle_stream_edges_ingested_total").value_or(0),
        stats.edges_ingested);
    EXPECT_EQ(reg.value_u64("parcycle_stream_cycles_found_total").value_or(0),
              stats.cycles_found);
    EXPECT_GT(stats.cycles_found, 0u);
    EXPECT_EQ(reg.value_u64("parcycle_stream_batches_total").value_or(0),
              stats.batches);
    EXPECT_EQ(
        reg.value_u64("parcycle_stream_work_edges_visited_total").value_or(0),
        stats.work.edges_visited);
    // Per-lane family carries the window label.
    EXPECT_EQ(reg.value_u64("parcycle_stream_lane_cycles_found_total",
                            "window=\"50\"")
                  .value_or(0),
              stats.per_window.at(0).cycles_found);
    // The rendered histogram count equals the recorded sample count.
    const std::string text = reg.render_text();
    std::ostringstream expect;
    expect << "parcycle_stream_search_latency_ns_count "
           << stats.latency.count() << "\n";
    EXPECT_NE(text.find(expect.str()), std::string::npos);
  });
}

// Process-level gauges read straight from /proc/self: any live process has
// resident memory, at least this one thread, and at least stdin/out/err
// open. cpu_seconds_total is a double counter (not readable via value_u64)
// so it is checked in the rendered text instead.
TEST(MetricsRegistry, ProcessImportReportsPlausibleLiveValues) {
  MetricsRegistry reg;
  reg.import_process();
  EXPECT_GT(
      reg.value_u64("parcycle_process_resident_memory_bytes").value_or(0),
      0u);
  EXPECT_GE(reg.value_u64("parcycle_process_virtual_memory_bytes").value_or(0),
            reg.value_u64("parcycle_process_resident_memory_bytes")
                .value_or(0));
  EXPECT_GE(reg.value_u64("parcycle_process_threads").value_or(0), 1u);
  // The fd counter excludes the /proc/self/fd traversal's own descriptor,
  // so stdin/stdout/stderr alone put the floor at 3.
  EXPECT_GE(reg.value_u64("parcycle_process_open_fds").value_or(0), 3u);
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("parcycle_process_cpu_seconds_total"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE parcycle_process_cpu_seconds_total counter"),
            std::string::npos);
  // Re-import is SET, not accumulate: values refresh rather than double.
  reg.import_process();
  EXPECT_GE(reg.value_u64("parcycle_process_threads").value_or(0), 1u);
}

}  // namespace
}  // namespace parcycle
