#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"

namespace parcycle {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, BasicAdjacency) {
  Digraph g(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);

  const auto n0 = g.out_neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);

  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.in_degree(2), 2u);

  const auto in2 = g.in_neighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);
}

TEST(Digraph, NeighborListsAreSorted) {
  Digraph g(5, {{0, 4}, {0, 1}, {0, 3}, {0, 2}, {2, 1}, {2, 0}});
  const auto n0 = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
  const auto in1 = g.in_neighbors(1);
  EXPECT_TRUE(std::is_sorted(in1.begin(), in1.end()));
}

TEST(Digraph, DedupCollapsesParallelEdges) {
  Digraph g(3, {{0, 1}, {0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Digraph, NoDedupKeepsParallelEdges) {
  Digraph g(3, {{0, 1}, {0, 1}}, /*dedup=*/false);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Digraph, HasEdge) {
  Digraph g(4, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(3, 3));
}

TEST(Digraph, SelfLoopsKept) {
  Digraph g(2, {{0, 0}, {0, 1}});
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
}

TEST(Digraph, EdgeListRoundTrip) {
  const std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {2, 3}};
  Digraph g(4, edges);
  EXPECT_EQ(g.edge_list(), edges);  // already sorted
}

TEST(GraphBuilder, InfersVertexCount) {
  GraphBuilder builder;
  builder.add_edge(3, 7);
  builder.add_edge(1, 2);
  EXPECT_EQ(builder.num_vertices(), 8u);
  const Digraph g = builder.build_digraph();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_TRUE(g.has_edge(3, 7));
}

TEST(GraphBuilder, DropSelfLoopsOption) {
  GraphBuilder builder;
  builder.set_drop_self_loops(true);
  builder.add_edge(1, 1);
  builder.add_edge(0, 1);
  const Digraph g = builder.build_digraph();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder builder;
  builder.add_edge(0, 1);
  const Digraph g1 = builder.build_digraph();
  builder.add_edge(1, 0);
  const Digraph g2 = builder.build_digraph();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

}  // namespace
}  // namespace parcycle
