#include "io/edge_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "support/scheduler.hpp"

namespace parcycle {
namespace {

void expect_same_graph(const TemporalGraph& a, const TemporalGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const auto ea = a.edges_by_time();
  const auto eb = b.edges_by_time();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].src, eb[i].src) << "edge " << i;
    ASSERT_EQ(ea[i].dst, eb[i].dst) << "edge " << i;
    ASSERT_EQ(ea[i].ts, eb[i].ts) << "edge " << i;
    ASSERT_EQ(ea[i].id, eb[i].id) << "edge " << i;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.out_edges(v).size(), b.out_edges(v).size()) << "vertex " << v;
    ASSERT_EQ(a.in_edges(v).size(), b.in_edges(v).size()) << "vertex " << v;
  }
}

std::string error_message_of(const std::string& input,
                             const EdgeListOptions& options = {}) {
  try {
    parse_temporal_edge_list(input, options);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return "";
}

TEST(IoParser, CrlfWhitespaceAndBomTolerated) {
  const std::string input =
      "\xEF\xBB\xBF# comment\r\n"
      "0 1 100\r\n"
      "  1\t2\t200  \r\n"
      "\t\r\n"
      "2 0 300  # trailing comment\r\n";
  const TemporalGraph crlf = parse_temporal_edge_list(input);
  const TemporalGraph lf =
      parse_temporal_edge_list("0 1 100\n1 2 200\n2 0 300\n");
  expect_same_graph(crlf, lf);
}

TEST(IoParser, ExtraColumnsIgnored) {
  // Several SNAP files (higgs-activity) carry a fourth annotation column.
  const TemporalGraph g = parse_temporal_edge_list("0 1 100 RT\n1 0 200 MT\n");
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.max_timestamp(), 200);
}

TEST(IoParser, ErrorsNameTheOffendingLine) {
  EXPECT_NE(error_message_of("0 1 10\n1 2 20\n0 banana\n")
                .find("at line 3"),
            std::string::npos);
  EXPECT_NE(error_message_of("0 1 10\n\n# c\n1\n").find("at line 4"),
            std::string::npos);
  // Missing destination column.
  EXPECT_NE(error_message_of("7\n").find("at line 1"), std::string::npos);
}

TEST(IoParser, NegativeAndOverflowingVertexIdsRejected) {
  EXPECT_THROW(parse_temporal_edge_list("-1 2 5\n"), std::runtime_error);
  // 2^32 does not fit VertexId; 0xFFFFFFFF is the invalid sentinel.
  EXPECT_NE(error_message_of("4294967296 1 5\n").find("out of range"),
            std::string::npos);
  EXPECT_NE(error_message_of("4294967295 1 5\n").find("out of range"),
            std::string::npos);
  // Negative timestamps are legitimate.
  EXPECT_EQ(parse_temporal_edge_list("0 1 -50\n").min_timestamp(), -50);
}

TEST(IoParser, MissingTimestampPolicy) {
  EXPECT_EQ(parse_temporal_edge_list("0 1\n1 0\n").max_timestamp(), 0);
  EdgeListOptions options;
  options.allow_missing_timestamps = false;
  EXPECT_THROW(parse_temporal_edge_list("0 1\n", options),
               std::runtime_error);
}

TEST(IoParser, LoadStatsCountsEverything) {
  EdgeListOptions options;
  options.drop_self_loops = true;
  options.drop_duplicate_edges = true;
  LoadStats stats;
  const TemporalGraph g = parse_temporal_edge_list(
      "# header\n"
      "0 1 10\n"
      "3 3 11\n"   // self loop, dropped
      "0 1 10\n"   // exact duplicate, dropped
      "\n"
      "1 0 12\n"
      "0 1 13\n",  // same pair, different ts: kept
      options, &stats);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(stats.lines, 7u);
  EXPECT_EQ(stats.comment_lines, 2u);
  EXPECT_EQ(stats.edges_loaded, 3u);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
  EXPECT_EQ(stats.duplicate_edges_dropped, 1u);
  // Dropped self-loops do not grow the vertex set (builder-compatible).
  EXPECT_EQ(g.num_vertices(), 2u);
}

TEST(IoParser, IstreamPathMatchesBufferPath) {
  const std::string input = "2 0 30\n0 1 10\n1 2 20\n";
  std::istringstream in(input);
  LoadStats stream_stats;
  LoadStats buffer_stats;
  const TemporalGraph a = load_temporal_edge_list(in, {}, &stream_stats);
  const TemporalGraph b = parse_temporal_edge_list(input, {}, &buffer_stats);
  expect_same_graph(a, b);
  EXPECT_EQ(stream_stats.lines, buffer_stats.lines);
  EXPECT_EQ(stream_stats.edges_loaded, buffer_stats.edges_loaded);
}

// -- Parallel path -----------------------------------------------------------

std::string edge_list_text(const TemporalGraph& graph) {
  std::ostringstream out;
  save_temporal_edge_list(graph, out);
  return out.str();
}

TemporalGraph generated(std::size_t edges, std::uint64_t seed) {
  ScaleFreeTemporalParams params;
  params.num_vertices = static_cast<VertexId>(edges / 8 + 16);
  params.num_edges = edges;
  params.time_span = 100'000;
  params.attachment = 0.7;
  params.burstiness = 0.5;
  params.seed = seed;
  return scale_free_temporal(params);
}

TEST(IoParserParallel, MatchesSerialOnGeneratedGraphs) {
  for (const std::size_t edges : {1'000ul, 20'000ul}) {
    const TemporalGraph original = generated(edges, 7 + edges);
    const std::string text = edge_list_text(original);
    LoadStats serial_stats;
    const TemporalGraph serial =
        parse_temporal_edge_list(text, {}, &serial_stats);
    expect_same_graph(original, serial);
    for (const unsigned threads : {1u, 2u, 4u}) {
      EdgeListOptions options;
      options.parallel_chunk_bytes = text.size() / 13 + 1;  // force chunks
      LoadStats parallel_stats;
      const TemporalGraph parallel =
          Scheduler::with_pool(threads, [&](Scheduler& sched) {
            return parse_temporal_edge_list_parallel(text, sched, options,
                                                     &parallel_stats);
          });
      expect_same_graph(serial, parallel);
      EXPECT_EQ(parallel_stats.lines, serial_stats.lines);
      EXPECT_EQ(parallel_stats.edges_loaded, serial_stats.edges_loaded);
      EXPECT_GT(parallel_stats.parse_chunks, 1u);
    }
  }
}

TEST(IoParserParallel, ErrorLineNumbersSpanChunks) {
  std::string text;
  for (int i = 0; i < 997; ++i) {
    text += "1 2 3\n";
  }
  text += "oops\n";  // line 998
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    EdgeListOptions options;
    options.parallel_chunk_bytes = 64;
    try {
      parse_temporal_edge_list_parallel(text, sched, options);
      FAIL() << "expected a parse error";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("at line 998"),
                std::string::npos)
          << error.what();
    }
  });
}

TEST(IoParserParallel, StatsAndDedupAcrossChunks) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "4 5 77\n";  // all duplicates of one edge
    text += std::to_string(i % 7) + " " + std::to_string(i % 7) + " 1\n";
  }
  EdgeListOptions options;
  options.parallel_chunk_bytes = 128;
  options.drop_self_loops = true;
  options.drop_duplicate_edges = true;
  LoadStats stats;
  const TemporalGraph graph =
      Scheduler::with_pool(4, [&](Scheduler& sched) {
        return parse_temporal_edge_list_parallel(text, sched, options,
                                                 &stats);
      });
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(stats.self_loops_dropped, 500u);
  EXPECT_EQ(stats.duplicate_edges_dropped, 499u);
  EXPECT_EQ(stats.lines, 1000u);
}

TEST(IoParserParallel, FileRoundTripThroughRealFiles) {
  const TemporalGraph original = generated(5'000, 99);
  const std::string path = testing::TempDir() + "io_parser_roundtrip.txt";
  save_temporal_edge_list_file(original, path);
  LoadStats stats;
  const TemporalGraph serial = load_temporal_edge_list_file(path, {}, &stats);
  expect_same_graph(original, serial);
  EXPECT_EQ(stats.edges_loaded, original.num_edges());
  EXPECT_GT(stats.bytes, 0u);
  const TemporalGraph parallel =
      Scheduler::with_pool(2, [&](Scheduler& sched) {
        return load_temporal_edge_list_file_parallel(path, sched);
      });
  expect_same_graph(original, parallel);
  std::remove(path.c_str());
}

TEST(IoParserParallel, UnreadableFileThrows) {
  EXPECT_THROW(load_temporal_edge_list_file("/nonexistent/graph.txt"),
               std::runtime_error);
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    EXPECT_THROW(
        load_temporal_edge_list_file_parallel("/nonexistent/graph.txt", sched),
        std::runtime_error);
  });
}

TEST(IoParserParallel, ParallelFinaliseMatchesSerialConstruction) {
  // Above the parallel-finalisation gate (2^15 edges) the scheduler-aware
  // TemporalGraph constructor runs the chunked sort-merge and the per-chunk
  // counting-sort CSR fill; the result must be indistinguishable from the
  // serial constructor's, adjacency order included.
  const TemporalGraph serial = generated(40'000, 99);
  std::vector<TemporalEdge> scrambled(serial.edges_by_time().begin(),
                                      serial.edges_by_time().end());
  std::mt19937_64 rng(123);
  std::shuffle(scrambled.begin(), scrambled.end(), rng);
  for (auto& e : scrambled) {
    e.id = kInvalidEdge;  // ids are reassigned by rank either way
  }
  for (const unsigned threads : {2u, 4u}) {
    auto edges = scrambled;
    const TemporalGraph parallel =
        Scheduler::with_pool(threads, [&](Scheduler& sched) {
          return TemporalGraph(serial.num_vertices(), std::move(edges),
                               &sched);
        });
    expect_same_graph(serial, parallel);
    for (VertexId v = 0; v < serial.num_vertices(); ++v) {
      const auto a = serial.out_edges(v);
      const auto b = parallel.out_edges(v);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].id, b[i].id) << "vertex " << v << " slot " << i;
        ASSERT_EQ(a[i].dst, b[i].dst);
        ASSERT_EQ(a[i].ts, b[i].ts);
      }
      const auto ai = serial.in_edges(v);
      const auto bi = parallel.in_edges(v);
      ASSERT_EQ(ai.size(), bi.size());
      for (std::size_t i = 0; i < ai.size(); ++i) {
        ASSERT_EQ(ai[i].id, bi[i].id) << "vertex " << v << " slot " << i;
      }
    }
  }
}

}  // namespace
}  // namespace parcycle
