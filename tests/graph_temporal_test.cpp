#include "graph/temporal_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"

namespace parcycle {
namespace {

TemporalGraph make_sample() {
  // Mirrors the paper's Figure 2 style: edges with assorted timestamps,
  // including parallel edges.
  GraphBuilder builder(5);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 12);
  builder.add_edge(2, 0, 15);
  builder.add_edge(1, 2, 14);  // parallel edge, later timestamp
  builder.add_edge(2, 3, 5);
  builder.add_edge(3, 4, 7);
  builder.add_edge(4, 2, 2);
  return builder.build_temporal();
}

TEST(TemporalGraph, IdsFollowTimeOrder) {
  const TemporalGraph g = make_sample();
  ASSERT_EQ(g.num_edges(), 7u);
  const auto edges = g.edges_by_time();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i].id, i);
    if (i > 0) {
      EXPECT_LE(edges[i - 1].ts, edges[i].ts);
    }
  }
  EXPECT_EQ(g.min_timestamp(), 2);
  EXPECT_EQ(g.max_timestamp(), 15);
  EXPECT_EQ(g.time_span(), 13);
}

TEST(TemporalGraph, OutEdgesSortedByTimestamp) {
  const TemporalGraph g = make_sample();
  const auto out1 = g.out_edges(1);
  ASSERT_EQ(out1.size(), 2u);
  EXPECT_EQ(out1[0].ts, 12);
  EXPECT_EQ(out1[1].ts, 14);
  EXPECT_EQ(out1[0].dst, 2u);
  EXPECT_EQ(out1[1].dst, 2u);
}

TEST(TemporalGraph, InEdgesSortedByTimestamp) {
  const TemporalGraph g = make_sample();
  const auto in2 = g.in_edges(2);
  ASSERT_EQ(in2.size(), 3u);
  EXPECT_EQ(in2[0].ts, 2);
  EXPECT_EQ(in2[1].ts, 12);
  EXPECT_EQ(in2[2].ts, 14);
}

TEST(TemporalGraph, WindowQueriesAreInclusive) {
  const TemporalGraph g = make_sample();
  const auto window = g.out_edges_in_window(1, 12, 14);
  ASSERT_EQ(window.size(), 2u);

  const auto only_first = g.out_edges_in_window(1, 12, 13);
  ASSERT_EQ(only_first.size(), 1u);
  EXPECT_EQ(only_first[0].ts, 12);

  const auto none = g.out_edges_in_window(1, 15, 20);
  EXPECT_TRUE(none.empty());

  const auto in_window = g.in_edges_in_window(2, 3, 13);
  ASSERT_EQ(in_window.size(), 1u);
  EXPECT_EQ(in_window[0].ts, 12);
}

TEST(TemporalGraph, EdgeLookupById) {
  const TemporalGraph g = make_sample();
  const auto& first = g.edge(0);
  EXPECT_EQ(first.ts, 2);
  EXPECT_EQ(first.src, 4u);
  EXPECT_EQ(first.dst, 2u);
}

TEST(TemporalGraph, StaticProjectionDedups) {
  const TemporalGraph g = make_sample();
  const Digraph s = g.static_projection();
  EXPECT_EQ(s.num_vertices(), 5u);
  EXPECT_EQ(s.num_edges(), 6u);  // the two 1->2 edges collapse
  EXPECT_TRUE(s.has_edge(1, 2));
  EXPECT_TRUE(s.has_edge(4, 2));
}

TEST(TemporalGraph, EmptyGraph) {
  TemporalGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.time_span(), 0);
}

TEST(TemporalGraph, TiedTimestampsGetDistinctIds) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 5);
  builder.add_edge(1, 2, 5);
  builder.add_edge(2, 0, 5);
  const TemporalGraph g = builder.build_temporal();
  const auto edges = g.edges_by_time();
  EXPECT_EQ(edges[0].id, 0u);
  EXPECT_EQ(edges[1].id, 1u);
  EXPECT_EQ(edges[2].id, 2u);
  // Ties broken by (src, dst).
  EXPECT_EQ(edges[0].src, 0u);
  EXPECT_EQ(edges[1].src, 1u);
  EXPECT_EQ(edges[2].src, 2u);
}

}  // namespace
}  // namespace parcycle
