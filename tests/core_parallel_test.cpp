// Parallel enumeration correctness: coarse- and fine-grained variants must
// produce exactly the serial cycle sets under every thread count, spawn
// policy and copy-on-steal mode.
#include <gtest/gtest.h>

#include <tuple>

#include "core/coarse_grained.hpp"
#include "core/fine_johnson.hpp"
#include "core/fine_read_tarjan.hpp"
#include "core/johnson.hpp"
#include "core/read_tarjan.hpp"
#include "graph/generators.hpp"
#include "support/prng.hpp"

namespace parcycle {
namespace {

TemporalGraph test_graph(std::uint64_t seed) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 30;
  params.num_edges = 220;
  params.time_span = 1000;
  params.attachment = 0.6;
  params.seed = seed;
  return scale_free_temporal(params);
}

// --- coarse-grained -----------------------------------------------------------

class CoarseGrainedTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CoarseGrainedTest, StaticMatchesSerial) {
  const unsigned threads = GetParam();
  SplitMix64 seeds(42);
  for (int trial = 0; trial < 3; ++trial) {
    const Digraph g = erdos_renyi(12, 40, seeds.next());
    const auto serial = johnson_simple_cycles(g);
    Scheduler sched(threads);
    CollectingSink jsink;
    CollectingSink rsink;
    const auto cj = coarse_johnson_simple_cycles(g, sched, {}, &jsink);
    const auto cr = coarse_read_tarjan_simple_cycles(g, sched, {}, &rsink);
    EXPECT_EQ(cj.num_cycles, serial.num_cycles);
    EXPECT_EQ(cr.num_cycles, serial.num_cycles);
    EXPECT_EQ(jsink.sorted_cycles(), rsink.sorted_cycles());
  }
}

TEST_P(CoarseGrainedTest, WindowedMatchesSerial) {
  const unsigned threads = GetParam();
  const TemporalGraph g = test_graph(7);
  const Timestamp window = 200;
  CollectingSink serial_sink;
  const auto serial = johnson_windowed_cycles(g, window, {}, &serial_sink);

  Scheduler sched(threads);
  CollectingSink jsink;
  CollectingSink rsink;
  const auto cj = coarse_johnson_windowed_cycles(g, window, sched, {}, &jsink);
  const auto cr =
      coarse_read_tarjan_windowed_cycles(g, window, sched, {}, &rsink);
  EXPECT_EQ(cj.num_cycles, serial.num_cycles);
  EXPECT_EQ(cr.num_cycles, serial.num_cycles);
  EXPECT_EQ(jsink.sorted_cycles(), serial_sink.sorted_cycles());
  EXPECT_EQ(rsink.sorted_cycles(), serial_sink.sorted_cycles());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CoarseGrainedTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

// Coarse-grained Johnson is work efficient: its total edge visits equal the
// serial algorithm's (Proposition 4.1).
TEST(CoarseGrained, WorkEqualsSerial) {
  const TemporalGraph g = test_graph(11);
  const auto serial = johnson_windowed_cycles(g, 250);
  Scheduler sched(4);
  const auto coarse = coarse_johnson_windowed_cycles(g, 250, sched);
  EXPECT_EQ(coarse.work.edges_visited, serial.work.edges_visited);
}

// --- fine-grained -------------------------------------------------------------

struct FineParams {
  unsigned threads;
  SpawnPolicy policy;
  bool naive_restore;
};

class FineGrainedTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int, bool>> {
 protected:
  ParallelOptions parallel_options() const {
    const auto [threads, policy, naive] = GetParam();
    ParallelOptions popts;
    popts.spawn_policy =
        policy == 0 ? SpawnPolicy::kAlways : SpawnPolicy::kAdaptive;
    popts.naive_state_restore = naive;
    return popts;
  }
  unsigned threads() const { return std::get<0>(GetParam()); }
};

TEST_P(FineGrainedTest, JohnsonMatchesSerial) {
  const TemporalGraph g = test_graph(23);
  const Timestamp window = 200;
  CollectingSink serial_sink;
  const auto serial = johnson_windowed_cycles(g, window, {}, &serial_sink);

  Scheduler sched(threads());
  CollectingSink sink;
  const auto fine = fine_johnson_windowed_cycles(g, window, sched, {},
                                                 parallel_options(), &sink);
  EXPECT_EQ(fine.num_cycles, serial.num_cycles);
  EXPECT_EQ(sink.sorted_cycles(), serial_sink.sorted_cycles());
}

TEST_P(FineGrainedTest, ReadTarjanMatchesSerial) {
  const TemporalGraph g = test_graph(37);
  const Timestamp window = 200;
  CollectingSink serial_sink;
  const auto serial = johnson_windowed_cycles(g, window, {}, &serial_sink);

  Scheduler sched(threads());
  CollectingSink sink;
  const auto fine = fine_read_tarjan_windowed_cycles(
      g, window, sched, {}, parallel_options(), &sink);
  EXPECT_EQ(fine.num_cycles, serial.num_cycles);
  EXPECT_EQ(sink.sorted_cycles(), serial_sink.sorted_cycles());
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, FineGrainedTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0, 1),  // kAlways, kAdaptive
                       ::testing::Values(false, true)));

// The figure-4a adversary: every cycle hangs off one starting edge, so this
// is the case where fine-grained parallelism matters (and where the stolen
// tasks get exercised hardest).
TEST(FineGrained, Figure4aAdversary) {
  const Digraph base = figure4a_graph(12);  // 1024 cycles
  const TemporalGraph g = with_uniform_timestamps(base, 100, 3);
  const Timestamp window = 1000;  // everything fits
  const auto serial = johnson_windowed_cycles(g, window);
  ASSERT_GE(serial.num_cycles, 1024u);

  for (const unsigned threads : {2u, 4u, 8u}) {
    Scheduler sched(threads);
    ParallelOptions popts;
    popts.spawn_policy = SpawnPolicy::kAlways;  // maximal stealing pressure
    const auto fj =
        fine_johnson_windowed_cycles(g, window, sched, {}, popts);
    const auto fr =
        fine_read_tarjan_windowed_cycles(g, window, sched, {}, popts);
    EXPECT_EQ(fj.num_cycles, serial.num_cycles) << "threads=" << threads;
    EXPECT_EQ(fr.num_cycles, serial.num_cycles) << "threads=" << threads;
  }
}

// Repeated stress with spawn-always to shake out copy-on-steal races.
TEST(FineGrained, StealStress) {
  SplitMix64 seeds(0xdead);
  for (int trial = 0; trial < 5; ++trial) {
    const TemporalGraph g = test_graph(seeds.next());
    const auto serial = johnson_windowed_cycles(g, 150);
    Scheduler sched(8);
    ParallelOptions popts;
    popts.spawn_policy = SpawnPolicy::kAlways;
    const auto fj = fine_johnson_windowed_cycles(g, 150, sched, {}, popts);
    const auto fr = fine_read_tarjan_windowed_cycles(g, 150, sched, {}, popts);
    ASSERT_EQ(fj.num_cycles, serial.num_cycles) << "trial " << trial;
    ASSERT_EQ(fr.num_cycles, serial.num_cycles) << "trial " << trial;
  }
}

// Fine-grained Read-Tarjan is work efficient (Theorem 6.1): its edge visits
// must match the serial Read-Tarjan's. Fine-grained Johnson may exceed the
// serial Johnson's (Theorem 5.1) but never the Tiernan blow-up.
TEST(FineGrained, ReadTarjanWorkEfficiency) {
  const TemporalGraph g = test_graph(51);
  Scheduler sched(4);
  ParallelOptions popts;
  popts.spawn_policy = SpawnPolicy::kAlways;
  const auto serial = read_tarjan_windowed_cycles(g, 200);
  const auto fine =
      fine_read_tarjan_windowed_cycles(g, 200, sched, {}, popts);
  EXPECT_EQ(fine.num_cycles, serial.num_cycles);
  // Identical search work; only copies/scheduling differ.
  EXPECT_EQ(fine.work.edges_visited, serial.work.edges_visited);
}

TEST(FineGrained, WindowSweepAgreesWithSerial) {
  const TemporalGraph g = test_graph(77);
  Scheduler sched(4);
  // Windows above ~400 on this graph explode combinatorially (fine for a
  // benchmark, not for a unit test).
  for (const Timestamp window : {0, 50, 150, 300}) {
    const auto serial = johnson_windowed_cycles(g, window);
    const auto fj = fine_johnson_windowed_cycles(g, window, sched);
    const auto fr = fine_read_tarjan_windowed_cycles(g, window, sched);
    EXPECT_EQ(fj.num_cycles, serial.num_cycles) << "window=" << window;
    EXPECT_EQ(fr.num_cycles, serial.num_cycles) << "window=" << window;
  }
}

TEST(FineGrained, LengthConstraints) {
  const TemporalGraph g = test_graph(91);
  Scheduler sched(4);
  for (const int max_len : {2, 3, 5}) {
    EnumOptions options;
    options.max_cycle_length = max_len;
    const auto serial = johnson_windowed_cycles(g, 300, options);
    const auto fj = fine_johnson_windowed_cycles(g, 300, sched, options);
    const auto fr = fine_read_tarjan_windowed_cycles(g, 300, sched, options);
    EXPECT_EQ(fj.num_cycles, serial.num_cycles) << "len=" << max_len;
    EXPECT_EQ(fr.num_cycles, serial.num_cycles) << "len=" << max_len;
  }
}

}  // namespace
}  // namespace parcycle
