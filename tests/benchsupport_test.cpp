#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_support/datasets.hpp"
#include "bench_support/json.hpp"
#include "bench_support/partition.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"

namespace parcycle {
namespace {

TEST(Json, WriterEmitsStableObjectTree) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.kv("bench", "demo");
    json.kv("threads", 4u);
    json.key("rows");
    json.begin_array();
    json.begin_object();
    json.kv("hops", 3);
    json.kv("seconds", 0.25);
    json.kv("quoted", "a\"b\\c");
    json.kv("ok", true);
    json.end_object();
    json.end_array();
    // The destructor closes the root object and appends the newline.
  }
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"bench\": \"demo\",\n"
            "  \"threads\": 4,\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"hops\": 3,\n"
            "      \"seconds\": 0.25,\n"
            "      \"quoted\": \"a\\\"b\\\\c\",\n"
            "      \"ok\": true\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(Json, EmptyContainersAndRoundTrippableDoubles) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.key("empty_array");
    json.begin_array();
    json.end_array();
    json.key("empty_object");
    json.begin_object();
    json.end_object();
    json.kv("third", 1.0 / 3.0);
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("\"empty_array\": []"), std::string::npos) << text;
  EXPECT_NE(text.find("\"empty_object\": {}"), std::string::npos) << text;
  double parsed = 0.0;
  const std::size_t pos = text.find("\"third\": ");
  ASSERT_NE(pos, std::string::npos);
  std::istringstream(text.substr(pos + 9)) >> parsed;
  EXPECT_EQ(parsed, 1.0 / 3.0);
}

TEST(Runner, HopConstrainedDispatchAgreesAcrossAlgos) {
  const TemporalGraph graph = build_dataset(dataset_by_name("BA"));
  const Timestamp window = 400;
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    for (const int hops : {3, 4}) {
      const auto hc =
          run_hop_constrained(Algo::kSerialHcDfs, graph, window, hops, sched);
      for (const Algo algo : {Algo::kFineHcDfs, Algo::kSerialJohnson,
                              Algo::kFineJohnson, Algo::kSerialReadTarjan}) {
        const auto other =
            run_hop_constrained(algo, graph, window, hops, sched);
        EXPECT_EQ(other.result.num_cycles, hc.result.num_cycles)
            << algo_name(algo) << " hops=" << hops;
      }
    }
    EXPECT_THROW(run_hop_constrained(Algo::kTwoScent, graph, window, 3, sched),
                 std::invalid_argument);
  });
}

TEST(Json, OutputPathFlagParsing) {
  const char* argv_with[] = {"bench", "quick", "--json", "/tmp/x.json"};
  EXPECT_EQ(json_output_path(4, const_cast<char**>(argv_with)), "/tmp/x.json");
  const char* argv_without[] = {"bench", "quick"};
  EXPECT_EQ(json_output_path(2, const_cast<char**>(argv_without)), "");
  const char* argv_dangling[] = {"bench", "--json"};
  EXPECT_EQ(json_output_path(2, const_cast<char**>(argv_dangling)), "");
}

TEST(Datasets, RegistryHasAllFifteenTable4Entries) {
  EXPECT_EQ(dataset_registry().size(), 15u);
  EXPECT_EQ(dataset_by_name("WT").full_name, "wiki-talk");
  EXPECT_THROW(dataset_by_name("nope"), std::out_of_range);
}

TEST(Datasets, AnalogsBuildDeterministically) {
  const auto& spec = dataset_by_name("BA");
  const TemporalGraph a = build_dataset(spec);
  const TemporalGraph b = build_dataset(spec);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_vertices(), spec.vertices);
  EXPECT_EQ(a.num_edges(), spec.edges);
  EXPECT_EQ(a.edge(0).ts, b.edge(0).ts);
}

TEST(Datasets, ResolveFallsBackToSyntheticWithoutDirectory) {
  const auto& spec = dataset_by_name("BA");
  const DatasetSource none = resolve_dataset(spec, "");
  EXPECT_FALSE(none.is_real());
  EXPECT_EQ(none.provenance, DatasetProvenance::kSynthetic);
  EXPECT_TRUE(none.path.empty());
  const DatasetSource missing = resolve_dataset(spec, "/nonexistent/dir");
  EXPECT_FALSE(missing.is_real());
  const TemporalGraph graph = none.load();
  EXPECT_EQ(graph.num_edges(), spec.edges);
}

TEST(Datasets, ResolveDiscoversRealFilesAndPrefersCaches) {
  const auto& spec = dataset_by_name("CO");
  const std::string dir = testing::TempDir();
  const std::string text_path =
      (std::filesystem::path(dir) / (spec.full_name + ".txt")).string();
  {
    std::ofstream out(text_path);
    out << "0 1 10\n1 2 20\n2 0 30\n";
  }
  const DatasetSource text = resolve_dataset(spec, dir);
  ASSERT_TRUE(text.is_real());
  EXPECT_EQ(text.provenance, DatasetProvenance::kRealText);
  EXPECT_EQ(text.path, text_path);

  // Loading with update_cache writes the sidecar; resolution then prefers
  // streaming it over re-parsing the text.
  LoadStats stats;
  const TemporalGraph parsed =
      text.load(nullptr, &stats, /*update_cache=*/true);
  EXPECT_EQ(parsed.num_edges(), 3u);
  EXPECT_EQ(stats.edges_loaded, 3u);
  const DatasetSource cached = resolve_dataset(spec, dir);
  ASSERT_TRUE(cached.is_real());
  EXPECT_EQ(cached.provenance, DatasetProvenance::kRealCache);
  EXPECT_EQ(cached.path, text_path + ".pcg");
  const TemporalGraph reloaded = cached.load();
  ASSERT_EQ(reloaded.num_edges(), parsed.num_edges());
  EXPECT_EQ(reloaded.edge(0).src, parsed.edge(0).src);

  // A re-fetched (newer) text file must not be shadowed by the stale cache.
  std::filesystem::last_write_time(
      text_path, std::filesystem::last_write_time(text_path + ".pcg") +
                     std::chrono::seconds(2));
  const DatasetSource refreshed = resolve_dataset(spec, dir);
  ASSERT_TRUE(refreshed.is_real());
  EXPECT_EQ(refreshed.provenance, DatasetProvenance::kRealText);
  EXPECT_EQ(refreshed.path, text_path);

  std::remove((text_path + ".pcg").c_str());
  std::remove(text_path.c_str());
}

TEST(Datasets, ProvenanceNames) {
  EXPECT_STREQ(provenance_name(DatasetProvenance::kSynthetic), "analog");
  EXPECT_STREQ(provenance_name(DatasetProvenance::kRealText), "real");
  EXPECT_STREQ(provenance_name(DatasetProvenance::kRealCache), "real-cache");
}

TEST(Partition, RoundRobinByTimestampOrder) {
  const auto& spec = dataset_by_name("BA");
  const TemporalGraph graph = build_dataset(spec);
  const auto partition = partition_starting_edges(graph, 4);
  ASSERT_EQ(partition.size(), 4u);
  std::size_t total = 0;
  for (const auto& rank : partition) {
    total += rank.size();
  }
  EXPECT_EQ(total, graph.num_edges());
  // Consecutive edge ids land on consecutive ranks.
  EXPECT_EQ(partition[0][0], 0u);
  EXPECT_EQ(partition[1][0], 1u);
  EXPECT_EQ(partition[2][0], 2u);
  EXPECT_EQ(partition[3][0], 3u);
}

TEST(Partition, BalanceOfUniformCostsIsNearPerfect) {
  const auto& spec = dataset_by_name("BA");
  const TemporalGraph graph = build_dataset(spec);
  const auto partition = partition_starting_edges(graph, 8);
  std::vector<SimJob> costs(graph.num_edges(), SimJob{1.0, 0.0});
  const PartitionBalance balance = evaluate_partition(partition, costs);
  EXPECT_LT(balance.imbalance, 1.01);
}

TEST(Runner, AlgorithmsAgreeViaDispatch) {
  const auto& spec = dataset_by_name("BA");
  const TemporalGraph graph = build_dataset(spec);
  Scheduler sched(2);
  const Timestamp window = graph.time_span() / 16;
  const auto serial = run_temporal(Algo::kSerialJohnson, graph, window, sched);
  const auto fine = run_temporal(Algo::kFineJohnson, graph, window, sched);
  const auto rt = run_temporal(Algo::kSerialReadTarjan, graph, window, sched);
  EXPECT_EQ(fine.result.num_cycles, serial.result.num_cycles);
  EXPECT_EQ(rt.result.num_cycles, serial.result.num_cycles);
  EXPECT_GT(serial.seconds, 0.0);
}

TEST(Runner, StartCostsCoverEveryEdge) {
  const auto& spec = dataset_by_name("BA");
  const TemporalGraph graph = build_dataset(spec);
  const StartCosts costs =
      collect_temporal_start_costs(graph, graph.time_span() / 16);
  EXPECT_EQ(costs.jobs.size(), graph.num_edges());
  EXPECT_GT(costs.total_cost, 0.0);
  EXPECT_GE(costs.max_cost, 1.0);
}

TEST(Runner, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, FormatsAndPrints) {
  TextTable table({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333"});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("| a   | bb |"), std::string::npos);
  EXPECT_EQ(TextTable::count(1234567), "1,234,567");
  EXPECT_EQ(TextTable::count(12), "12");
  EXPECT_EQ(TextTable::fixed(1.2345, 2), "1.23");
  EXPECT_EQ(TextTable::with_unit(0.5), "500.0ms");
}

}  // namespace
}  // namespace parcycle
