#include "schedsim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace parcycle {
namespace {

TEST(SchedSim, SingleCoreMakespanIsTotalWork) {
  const std::vector<SimJob> jobs = {{10, 0}, {20, 0}, {30, 0}};
  const SimResult result = simulate_coarse(jobs, 1);
  EXPECT_DOUBLE_EQ(result.makespan, 60.0);
  EXPECT_DOUBLE_EQ(result.total_work(), 60.0);
  EXPECT_DOUBLE_EQ(result.speedup_vs_serial(), 1.0);
}

TEST(SchedSim, CoarseDominatedByGiantJob) {
  // One job holds 90% of the work: coarse speedup caps near 1/0.9.
  std::vector<SimJob> jobs(91, SimJob{1, 0});
  jobs[0] = SimJob{900, 0};
  const SimResult result = simulate_coarse(jobs, 64);
  EXPECT_DOUBLE_EQ(result.makespan, 900.0);
  EXPECT_NEAR(result.speedup_vs_serial(), 990.0 / 900.0, 1e-9);
  EXPECT_GT(result.imbalance(), 10.0);
}

TEST(SchedSim, FineChopsGiantJob) {
  std::vector<SimJob> jobs(91, SimJob{1, 0});
  jobs[0] = SimJob{900, 0};
  const SimResult result = simulate_fine(jobs, 64, /*granularity=*/1.0);
  // 990 units over 64 cores: near-perfect balance.
  EXPECT_LT(result.makespan, 990.0 / 64.0 + 2.0);
  EXPECT_GT(result.speedup_vs_serial(), 50.0);
  EXPECT_LT(result.imbalance(), 1.2);
}

TEST(SchedSim, CriticalPathBoundsFine) {
  const std::vector<SimJob> jobs = {{100, 50}};
  const SimResult result = simulate_fine(jobs, 64, 1.0);
  EXPECT_GE(result.makespan, 50.0);
}

TEST(SchedSim, ZeroCostJobsIgnored) {
  const std::vector<SimJob> jobs = {{0, 0}, {5, 0}, {0, 0}};
  const SimResult coarse = simulate_coarse(jobs, 4);
  EXPECT_EQ(coarse.num_tasks, 1u);
  EXPECT_DOUBLE_EQ(coarse.makespan, 5.0);
}

TEST(SchedSim, MoreCoresNeverSlower) {
  std::vector<SimJob> jobs;
  for (int i = 0; i < 200; ++i) {
    jobs.push_back(SimJob{static_cast<double>(1 + i % 17), 0});
  }
  double previous = 1e300;
  for (const unsigned cores : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const SimResult fine = simulate_fine(jobs, cores, 4.0);
    EXPECT_LE(fine.makespan, previous + 1e-9) << cores;
    previous = fine.makespan;
  }
}

TEST(SchedSim, FineNeverWorseThanCoarse) {
  std::vector<SimJob> jobs;
  for (int i = 0; i < 50; ++i) {
    jobs.push_back(SimJob{static_cast<double>((i * 37) % 100 + 1), 0});
  }
  for (const unsigned cores : {2u, 8u, 32u, 128u}) {
    const SimResult fine = simulate_fine(jobs, cores, 1.0);
    const SimResult coarse = simulate_coarse(jobs, cores);
    EXPECT_LE(fine.makespan, coarse.makespan + 1e-9) << cores;
  }
}

}  // namespace
}  // namespace parcycle
