// Windowed simple-cycle enumeration on temporal graphs: equivalence of the
// three serial algorithms, window semantics, multi-edge (edge-identified)
// cycle semantics, and the canonical minimum-edge start property.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/johnson.hpp"
#include "core/read_tarjan.hpp"
#include "core/tiernan.hpp"
#include "core/window_context.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/prng.hpp"

namespace parcycle {
namespace {

void expect_all_equal(const TemporalGraph& g, Timestamp window,
                      const EnumOptions& options = {}) {
  CollectingSink tiernan_sink;
  CollectingSink johnson_sink;
  CollectingSink rt_sink;
  const auto brute = tiernan_windowed_cycles(g, window, options, &tiernan_sink);
  const auto johnson = johnson_windowed_cycles(g, window, options, &johnson_sink);
  const auto rt = read_tarjan_windowed_cycles(g, window, options, &rt_sink);
  EXPECT_EQ(johnson.num_cycles, brute.num_cycles);
  EXPECT_EQ(rt.num_cycles, brute.num_cycles);
  EXPECT_EQ(johnson_sink.sorted_cycles(), tiernan_sink.sorted_cycles());
  EXPECT_EQ(rt_sink.sorted_cycles(), tiernan_sink.sorted_cycles());
}

TEST(Windowed, TriangleInsideWindow) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 20);
  builder.add_edge(2, 0, 30);
  const TemporalGraph g = builder.build_temporal();
  EXPECT_EQ(johnson_windowed_cycles(g, 20).num_cycles, 1u);
  EXPECT_EQ(johnson_windowed_cycles(g, 19).num_cycles, 0u);
  EXPECT_EQ(read_tarjan_windowed_cycles(g, 20).num_cycles, 1u);
  EXPECT_EQ(read_tarjan_windowed_cycles(g, 19).num_cycles, 0u);
  EXPECT_EQ(tiernan_windowed_cycles(g, 20).num_cycles, 1u);
}

TEST(Windowed, Figure2Semantics) {
  // The paper's Figure 2: one simple cycle in window [2:7], two in [10:15].
  // We model it with a graph whose cycles live at those time ranges.
  GraphBuilder builder(4);
  // Cycle A: timestamps 2..7.
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 2, 5);
  builder.add_edge(2, 0, 7);
  // Cycles B and C: timestamps 10..15.
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 0, 12);
  builder.add_edge(1, 3, 13);
  builder.add_edge(3, 0, 15);
  const TemporalGraph g = builder.build_temporal();
  // Window size 5, *simple* (not temporal) cycle semantics: cycle A from its
  // minimum edge (ts=2); B and C from theirs (ts=10); plus the time-unordered
  // realisation {0->1@10, 1->2@5, 2->0@7} whose spread is exactly 5. Simple
  // windowed cycles ignore edge order — only the timestamp spread matters.
  EXPECT_EQ(johnson_windowed_cycles(g, 5).num_cycles, 4u);
  // Window size 2: only the 2-cycle {0->1@10, 1->0@12} fits.
  EXPECT_EQ(johnson_windowed_cycles(g, 2).num_cycles, 1u);
}

TEST(Windowed, ZeroWindowRequiresEqualTimestamps) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 5);
  builder.add_edge(1, 0, 5);
  builder.add_edge(1, 2, 5);
  builder.add_edge(2, 0, 9);
  const TemporalGraph g = builder.build_temporal();
  // Only 0->1->0 fits in a zero-width window.
  EXPECT_EQ(johnson_windowed_cycles(g, 0).num_cycles, 1u);
  EXPECT_EQ(read_tarjan_windowed_cycles(g, 0).num_cycles, 1u);
  EXPECT_EQ(tiernan_windowed_cycles(g, 0).num_cycles, 1u);
}

TEST(Windowed, ParallelEdgesYieldDistinctCycles) {
  // Cycles are edge-identified: two parallel 1->0 edges inside the window
  // give two distinct 2-cycles.
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 0, 11);
  builder.add_edge(1, 0, 12);
  const TemporalGraph g = builder.build_temporal();
  EXPECT_EQ(tiernan_windowed_cycles(g, 10).num_cycles, 2u);
  EXPECT_EQ(johnson_windowed_cycles(g, 10).num_cycles, 2u);
  EXPECT_EQ(read_tarjan_windowed_cycles(g, 10).num_cycles, 2u);
}

TEST(Windowed, DuplicateWindowsDoNotDuplicateCycles) {
  // A 2-cycle whose both edges could serve as window anchors must be counted
  // once (from the minimum edge only).
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 0, 10);  // same timestamp: id breaks the tie
  const TemporalGraph g = builder.build_temporal();
  EXPECT_EQ(johnson_windowed_cycles(g, 100).num_cycles, 1u);
  EXPECT_EQ(read_tarjan_windowed_cycles(g, 100).num_cycles, 1u);
  EXPECT_EQ(tiernan_windowed_cycles(g, 100).num_cycles, 1u);
}

TEST(Windowed, SelfLoopsCountOncePerEdge) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0, 5);
  builder.add_edge(0, 0, 9);
  builder.add_edge(0, 1, 7);
  const TemporalGraph g = builder.build_temporal();
  EXPECT_EQ(johnson_windowed_cycles(g, 1).num_cycles, 2u);
  EXPECT_EQ(read_tarjan_windowed_cycles(g, 1).num_cycles, 2u);
  EXPECT_EQ(tiernan_windowed_cycles(g, 1).num_cycles, 2u);
}

// Property: every reported cycle is vertex-simple, its edges all lie in the
// window anchored at its first (minimum) edge, and hops are consistent.
class PropertySink final : public CycleSink {
 public:
  explicit PropertySink(const TemporalGraph& g, Timestamp window)
      : graph_(g), window_(window) {}

  void on_cycle(std::span<const VertexId> vertices,
                std::span<const EdgeId> edges) override {
    ASSERT_FALSE(vertices.empty());
    ASSERT_EQ(edges.size(), vertices.size());
    std::set<VertexId> unique(vertices.begin(), vertices.end());
    EXPECT_EQ(unique.size(), vertices.size()) << "cycle repeats a vertex";

    Timestamp min_ts = graph_.edge(edges[0]).ts;
    EdgeId min_id = edges[0];
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto& e = graph_.edge(edges[i]);
      EXPECT_EQ(e.src, vertices[i]);
      EXPECT_EQ(e.dst, vertices[(i + 1) % vertices.size()]);
      EXPECT_LE(e.ts, min_ts + window_) << "edge outside anchor window";
      EXPECT_GE(e.ts, min_ts);
      if (i > 0) {
        EXPECT_GT(e.id, min_id) << "anchor edge is not the minimum";
      }
    }
    count_ += 1;
  }

  std::size_t count() const { return count_; }

 private:
  const TemporalGraph& graph_;
  Timestamp window_;
  std::size_t count_ = 0;
};

class WindowedRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WindowedRandomTest, AlgorithmsAgreeAndCyclesAreValid) {
  const auto [salt, window_divisor] = GetParam();
  SplitMix64 seeds(0x5eed0000u + static_cast<std::uint64_t>(salt));
  const TemporalGraph g = uniform_temporal(12, 60, 1000, seeds.next());
  const Timestamp window = 1000 / window_divisor;

  expect_all_equal(g, window);

  PropertySink props(g, window);
  const auto result = johnson_windowed_cycles(g, window, {}, &props);
  EXPECT_EQ(props.count(), result.num_cycles);
}

INSTANTIATE_TEST_SUITE_P(RandomTemporalSweep, WindowedRandomTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1, 2, 5, 10)));

TEST(Windowed, CycleUnionPruningDoesNotChangeResults) {
  SplitMix64 seeds(0xfeed);
  for (int trial = 0; trial < 5; ++trial) {
    const TemporalGraph g = uniform_temporal(15, 80, 500, seeds.next());
    EnumOptions with_union;
    with_union.use_cycle_union = true;
    EnumOptions without_union;
    without_union.use_cycle_union = false;
    const auto a = johnson_windowed_cycles(g, 100, with_union);
    const auto b = johnson_windowed_cycles(g, 100, without_union);
    EXPECT_EQ(a.num_cycles, b.num_cycles);
    // Pruning must not increase search work.
    EXPECT_LE(a.work.edges_visited, b.work.edges_visited);
    const auto c = read_tarjan_windowed_cycles(g, 100, with_union);
    const auto d = read_tarjan_windowed_cycles(g, 100, without_union);
    EXPECT_EQ(c.num_cycles, d.num_cycles);
    EXPECT_EQ(c.num_cycles, a.num_cycles);
  }
}

TEST(Windowed, CycleUnionLastUnionSizeMatchesStampScan) {
  // last_union_size() is maintained from the backward-pass queue length;
  // it must equal what the old O(n) stamp rescan counted, for every start,
  // including starts whose compute() fails (size 0).
  SplitMix64 seeds(0xdecade);
  for (int trial = 0; trial < 3; ++trial) {
    const TemporalGraph g = uniform_temporal(15, 80, 500, seeds.next());
    CycleUnionScratch scratch;
    scratch.init(g.num_vertices());
    for (const auto& e0 : g.edges_by_time()) {
      if (e0.src == e0.dst) {
        continue;
      }
      StartContext ctx;
      ctx.e0 = e0.id;
      ctx.tail = e0.src;
      ctx.head = e0.dst;
      ctx.t0 = e0.ts;
      ctx.hi = e0.ts + 100;
      const bool ok = scratch.compute(g, ctx);
      std::size_t rescan = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        rescan += scratch.contains(v) ? 1 : 0;
      }
      EXPECT_EQ(scratch.last_union_size(), rescan)
          << "trial=" << trial << " e0=" << e0.id;
      if (!ok) {
        EXPECT_EQ(scratch.last_union_size(), 0u);
      } else {
        EXPECT_GE(scratch.last_union_size(), 2u);  // tail and head at least
      }
    }
  }
}

TEST(Windowed, LengthConstrainedMatchesBruteForce) {
  SplitMix64 seeds(0xc0ffee);
  for (int max_len : {1, 2, 3, 5}) {
    EnumOptions options;
    options.max_cycle_length = max_len;
    for (int trial = 0; trial < 4; ++trial) {
      const TemporalGraph g = uniform_temporal(10, 50, 300, seeds.next());
      const auto brute = tiernan_windowed_cycles(g, 150, options);
      const auto johnson = johnson_windowed_cycles(g, 150, options);
      const auto rt = read_tarjan_windowed_cycles(g, 150, options);
      EXPECT_EQ(johnson.num_cycles, brute.num_cycles)
          << "len=" << max_len << " trial=" << trial;
      EXPECT_EQ(rt.num_cycles, brute.num_cycles)
          << "len=" << max_len << " trial=" << trial;
    }
  }
}

TEST(Windowed, ScaleFreeGraphAgreement) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 40;
  params.num_edges = 250;
  params.time_span = 1000;
  params.seed = 99;
  const TemporalGraph g = scale_free_temporal(params);
  expect_all_equal(g, 150);
}

TEST(Windowed, WholeSpanWindowSeesEverything) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1);
  builder.add_edge(1, 2, 100);
  builder.add_edge(2, 3, 200);
  builder.add_edge(3, 0, 300);
  builder.add_edge(2, 0, 150);
  const TemporalGraph g = builder.build_temporal();
  // Two cycles when the window covers the whole span.
  EXPECT_EQ(johnson_windowed_cycles(g, 299).num_cycles, 2u);
  EXPECT_EQ(read_tarjan_windowed_cycles(g, 299).num_cycles, 2u);
  // Shrinking the window kills the long cycle (spread 299) but keeps the
  // short one (spread exactly 149)...
  EXPECT_EQ(johnson_windowed_cycles(g, 149).num_cycles, 1u);
  // ...until the window shrinks below its spread too.
  EXPECT_EQ(johnson_windowed_cycles(g, 148).num_cycles, 0u);
}

}  // namespace
}  // namespace parcycle
