// Parallel behaviour of the streaming subsystem: thread sweeps must leave
// cycle counts AND work counts untouched (the per-edge search carries no
// shared blocking state, so unlike the batch fine-grained algorithms its
// edge-visit totals are schedule-independent), escalated and serial per-edge
// searches must agree edge-for-edge, and repeated runs must be stable (the
// TSan CI job reruns this suite).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "stream/engine.hpp"
#include "stream/incremental.hpp"
#include "stream/sliding_window_graph.hpp"
#include "support/scheduler.hpp"
#include "temporal/temporal_johnson.hpp"

namespace parcycle {
namespace {

TemporalGraph test_graph() {
  ScaleFreeTemporalParams params;
  params.num_vertices = 80;
  params.num_edges = 600;
  params.time_span = 2500;
  params.attachment = 0.8;
  params.burstiness = 0.6;
  params.seed = 1234;
  return scale_free_temporal(params);
}

constexpr Timestamp kWindow = 170;

StreamStats replay(const TemporalGraph& graph, unsigned threads,
                   std::size_t hot_threshold, SpawnPolicy policy) {
  return Scheduler::with_pool(threads, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = kWindow;
    options.batch_size = 64;
    options.hot_frontier_threshold = hot_threshold;
    options.spawn_policy = policy;
    StreamEngine engine(options, sched, nullptr);
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
    }
    engine.flush();
    return engine.stats();
  });
}

TEST(StreamParallel, ThreadSweepIsDeterministic) {
  const TemporalGraph graph = test_graph();
  const StreamStats reference = replay(graph, 1, 8, SpawnPolicy::kAdaptive);
  ASSERT_GT(reference.cycles_found, 0u);
  for (const unsigned threads : {2u, 4u}) {
    for (const SpawnPolicy policy :
         {SpawnPolicy::kAdaptive, SpawnPolicy::kAlways}) {
      SCOPED_TRACE(threads);
      const StreamStats run = replay(graph, threads, 8, policy);
      EXPECT_EQ(run.cycles_found, reference.cycles_found);
      EXPECT_EQ(run.work.cycles_found, reference.work.cycles_found);
      EXPECT_EQ(run.work.edges_visited, reference.work.edges_visited);
      EXPECT_EQ(run.work.vertices_visited, reference.work.vertices_visited);
      EXPECT_EQ(run.escalated_edges, reference.escalated_edges);
    }
  }
}

TEST(StreamParallel, EscalationThresholdOnlyMovesWork) {
  const TemporalGraph graph = test_graph();
  const StreamStats serial_only =
      replay(graph, 4, static_cast<std::size_t>(-1), SpawnPolicy::kAdaptive);
  const StreamStats all_fine = replay(graph, 4, 0, SpawnPolicy::kAlways);
  const StreamStats mixed = replay(graph, 4, 6, SpawnPolicy::kAdaptive);
  EXPECT_EQ(serial_only.escalated_edges, 0u);
  EXPECT_GT(all_fine.escalated_edges, 0u);
  EXPECT_EQ(serial_only.cycles_found, all_fine.cycles_found);
  EXPECT_EQ(serial_only.cycles_found, mixed.cycles_found);
  EXPECT_EQ(serial_only.work.edges_visited, all_fine.work.edges_visited);
  EXPECT_EQ(serial_only.work.edges_visited, mixed.work.edges_visited);
}

TEST(StreamParallel, FineSearchMatchesSerialPerEdge) {
  const TemporalGraph graph = test_graph();
  Scheduler::with_pool(4, [&](Scheduler& sched) {
    SlidingWindowGraph live(graph.num_vertices());
    StreamSearchScratch serial_scratch;
    StreamSearchScratch fine_scratch;
    for (const auto& e : graph.edges_by_time()) {
      live.ingest(e.src, e.dst, e.ts);
      WorkCounters serial_work;
      WorkCounters fine_work;
      const std::uint64_t serial = cycles_closed_by_edge(
          live, e, kWindow, {}, serial_scratch, serial_work);
      const std::uint64_t fine = fine_cycles_closed_by_edge(
          live, e, kWindow, sched, {}, {}, fine_scratch, fine_work);
      ASSERT_EQ(serial, fine) << "edge " << e.id;
      ASSERT_EQ(serial_work.cycles_found, fine_work.cycles_found);
      ASSERT_EQ(serial_work.edges_visited, fine_work.edges_visited);
    }
  });
}

TEST(StreamParallel, ReplayTotalsMatchBatchEnumerator) {
  const TemporalGraph graph = test_graph();
  const EnumResult batch = temporal_johnson_cycles(graph, kWindow);
  for (const unsigned threads : {1u, 2u, 4u}) {
    SCOPED_TRACE(threads);
    const StreamStats run = replay(graph, threads, 12, SpawnPolicy::kAdaptive);
    EXPECT_EQ(run.cycles_found, batch.num_cycles);
  }
}

TEST(StreamParallel, BackpressureBoundsPendingBuffer) {
  // The engine drains synchronously at batch_size: after any push, the
  // sliding graph has absorbed every edge except at most one partial batch.
  const TemporalGraph graph = test_graph();
  Scheduler::with_pool(2, [&](Scheduler& sched) {
    StreamOptions options;
    options.window = kWindow;
    options.batch_size = 32;
    StreamEngine engine(options, sched, nullptr);
    std::uint64_t pushed = 0;
    for (const auto& e : graph.edges_by_time()) {
      engine.push(e.src, e.dst, e.ts);
      pushed += 1;
      const std::uint64_t buffered = pushed - engine.graph().total_ingested();
      EXPECT_LT(buffered, options.batch_size);
    }
    engine.flush();
    EXPECT_EQ(engine.graph().total_ingested(), pushed);
  });
}

TEST(StreamParallel, EngineRejectsOutOfOrderPush) {
  Scheduler::with_pool(1, [](Scheduler& sched) {
    StreamOptions options;
    options.window = 10;
    StreamEngine engine(options, sched, nullptr);
    engine.push(0, 1, 100);
    EXPECT_THROW(engine.push(1, 0, 99), std::invalid_argument);
    EXPECT_NO_THROW(engine.push(1, 0, 100));
    engine.flush();
  });
}

}  // namespace
}  // namespace parcycle
