// Cross-checks the three serial enumeration algorithms against closed forms,
// the paper's example graphs, and each other on randomized inputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "core/johnson.hpp"
#include "core/read_tarjan.hpp"
#include "core/tiernan.hpp"
#include "graph/generators.hpp"
#include "support/prng.hpp"

namespace parcycle {
namespace {

// Number of simple cycles of the complete digraph K_n:
// sum over k = 2..n of C(n, k) * (k-1)!.
std::uint64_t complete_digraph_cycles(unsigned n) {
  std::uint64_t total = 0;
  for (unsigned k = 2; k <= n; ++k) {
    std::uint64_t binom = 1;
    for (unsigned i = 0; i < k; ++i) {
      binom = binom * (n - i) / (i + 1);
    }
    std::uint64_t fact = 1;
    for (unsigned i = 2; i < k; ++i) {
      fact *= i;
    }
    total += binom * fact;
  }
  return total;
}

TEST(ClosedForms, CompleteDigraphFormulaSpotChecks) {
  EXPECT_EQ(complete_digraph_cycles(2), 1u);
  EXPECT_EQ(complete_digraph_cycles(3), 5u);    // 3 two-cycles + 2 triangles
  EXPECT_EQ(complete_digraph_cycles(4), 20u);
}

class CompleteGraphTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompleteGraphTest, AllAlgorithmsMatchFormula) {
  const unsigned n = GetParam();
  const Digraph g = complete_digraph(n);
  const std::uint64_t expected = complete_digraph_cycles(n);
  EXPECT_EQ(tiernan_simple_cycles(g).num_cycles, expected);
  EXPECT_EQ(johnson_simple_cycles(g).num_cycles, expected);
  EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, expected);
}

INSTANTIATE_TEST_SUITE_P(SmallCompleteGraphs, CompleteGraphTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

TEST(SerialAlgorithms, DirectedRingHasOneCycle) {
  const Digraph g = directed_ring(25);
  EXPECT_EQ(tiernan_simple_cycles(g).num_cycles, 1u);
  EXPECT_EQ(johnson_simple_cycles(g).num_cycles, 1u);
  EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, 1u);
}

TEST(SerialAlgorithms, DagHasNoCycles) {
  const Digraph g = random_dag(40, 0.3, 3);
  EXPECT_EQ(tiernan_simple_cycles(g).num_cycles, 0u);
  EXPECT_EQ(johnson_simple_cycles(g).num_cycles, 0u);
  EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, 0u);
}

TEST(SerialAlgorithms, EmptyAndTrivialGraphs) {
  EXPECT_EQ(johnson_simple_cycles(Digraph()).num_cycles, 0u);
  EXPECT_EQ(read_tarjan_simple_cycles(Digraph()).num_cycles, 0u);
  const Digraph isolated(3, {});
  EXPECT_EQ(johnson_simple_cycles(isolated).num_cycles, 0u);
  EXPECT_EQ(read_tarjan_simple_cycles(isolated).num_cycles, 0u);
}

TEST(SerialAlgorithms, SelfLoopIsALengthOneCycle) {
  const Digraph g(3, {{0, 0}, {0, 1}, {1, 2}, {2, 1}});
  EXPECT_EQ(tiernan_simple_cycles(g).num_cycles, 2u);  // loop + 1<->2
  EXPECT_EQ(johnson_simple_cycles(g).num_cycles, 2u);
  EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, 2u);
}

// --- The paper's example graphs --------------------------------------------

TEST(PaperGraphs, Figure4aCycleCount) {
  // 2^(n-2) simple cycles, all through the edge v0 -> v1 (Theorem 4.2's
  // witness for the coarse-grained scalability failure).
  for (VertexId n = 3; n <= 12; ++n) {
    const Digraph g = figure4a_graph(n);
    const std::uint64_t expected = std::uint64_t{1} << (n - 2);
    EXPECT_EQ(johnson_simple_cycles(g).num_cycles, expected) << "n=" << n;
    EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, expected) << "n=" << n;
  }
}

TEST(PaperGraphs, JohnsonAdversarialHasTwoCycles) {
  const Digraph g = johnson_adversarial_graph(6, 10);
  EXPECT_EQ(tiernan_simple_cycles(g).num_cycles, 2u);
  EXPECT_EQ(johnson_simple_cycles(g).num_cycles, 2u);
  EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, 2u);
}

TEST(PaperGraphs, JohnsonPrunesDeadEndChainTiernanDoesNot) {
  // Figure 3a's story: Tiernan re-walks the dead-end chain once per chain
  // vertex (2m times); Johnson blocks it after one walk. The edge-visit gap
  // must therefore grow linearly in m for Tiernan but stay flat for Johnson.
  const VertexId k = 30;
  const auto tiernan_small = tiernan_simple_cycles(johnson_adversarial_graph(4, k));
  const auto tiernan_large = tiernan_simple_cycles(johnson_adversarial_graph(16, k));
  const auto johnson_small = johnson_simple_cycles(johnson_adversarial_graph(4, k));
  const auto johnson_large = johnson_simple_cycles(johnson_adversarial_graph(16, k));

  const auto tiernan_growth = tiernan_large.work.edges_visited -
                              tiernan_small.work.edges_visited;
  const auto johnson_growth = johnson_large.work.edges_visited -
                              johnson_small.work.edges_visited;
  // Tiernan pays ~12 extra walks of the k-chain; Johnson pays none.
  EXPECT_GT(tiernan_growth, 12u * k);
  EXPECT_LT(johnson_growth, 4u * k);
}

TEST(PaperGraphs, Figure5aHasFourCyclesAndExponentialPaths) {
  for (VertexId m = 2; m <= 8; ++m) {
    const Digraph g = figure5a_graph(m);
    EXPECT_EQ(johnson_simple_cycles(g).num_cycles, 4u) << "m=" << m;
    EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, 4u) << "m=" << m;
    // From v0 every maximal simple path runs through one of the four u_i and
    // then picks one branch per diamond stage (the closing edge v2 -> v0 is
    // not simple-path-extendable, so it opens no extra maximal path):
    // s = 4 * 2^m while c stays 4 — the s >> c gap of Theorem 5.1.
    const std::uint64_t s = count_maximal_simple_paths_from(g, 0);
    EXPECT_EQ(s, 4u * (std::uint64_t{1} << m)) << "m=" << m;
  }
}

TEST(PaperGraphs, Figure6aCycles) {
  const Digraph g = figure6a_graph();
  // The two v0-rooted cycles the figure draws (w-chain and u-chain) plus the
  // local w1 -> b3 -> b4 -> w1 loop; b3/b4 are dead ends only relative to
  // searches that already hold w1 on the path, which is the copy-on-steal
  // story the figure illustrates.
  EXPECT_EQ(tiernan_simple_cycles(g).num_cycles, 3u);
  EXPECT_EQ(johnson_simple_cycles(g).num_cycles, 3u);
  EXPECT_EQ(read_tarjan_simple_cycles(g).num_cycles, 3u);
}

// --- Randomised equivalence ---------------------------------------------------

struct RandomCase {
  VertexId n;
  double edge_factor;
  std::uint64_t seed;
};

class RandomEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<VertexId, double, int>> {};

TEST_P(RandomEquivalenceTest, CountsAndCycleSetsAgree) {
  const auto [n, factor, salt] = GetParam();
  SplitMix64 seeds(0xabcdef12u + static_cast<std::uint64_t>(salt));
  const auto m = static_cast<std::size_t>(factor * n);
  const Digraph g = erdos_renyi(n, m, seeds.next());

  CollectingSink tiernan_sink;
  CollectingSink johnson_sink;
  CollectingSink rt_sink;
  const auto tiernan = tiernan_simple_cycles(g, {}, &tiernan_sink);
  const auto johnson = johnson_simple_cycles(g, {}, &johnson_sink);
  const auto rt = read_tarjan_simple_cycles(g, {}, &rt_sink);

  EXPECT_EQ(johnson.num_cycles, tiernan.num_cycles);
  EXPECT_EQ(rt.num_cycles, tiernan.num_cycles);
  EXPECT_EQ(johnson_sink.sorted_cycles(), tiernan_sink.sorted_cycles());
  EXPECT_EQ(rt_sink.sorted_cycles(), tiernan_sink.sorted_cycles());
  // Sanity: sinks saw exactly as many cycles as were counted.
  EXPECT_EQ(tiernan_sink.size(), tiernan.num_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphSweep, RandomEquivalenceTest,
    ::testing::Combine(::testing::Values(VertexId{6}, VertexId{8}, VertexId{10}),
                       ::testing::Values(1.0, 1.8, 2.5),
                       ::testing::Values(0, 1, 2, 3)));

// --- Cycle-length constraints ---------------------------------------------------

class LengthConstraintTest : public ::testing::TestWithParam<int> {};

TEST_P(LengthConstraintTest, BoundedCountsMatchBruteForce) {
  const int max_len = GetParam();
  SplitMix64 seeds(0x1234u + static_cast<std::uint64_t>(max_len));
  for (int trial = 0; trial < 6; ++trial) {
    const Digraph g = erdos_renyi(9, 22, seeds.next());
    EnumOptions options;
    options.max_cycle_length = max_len;
    const auto brute = tiernan_simple_cycles(g, options);
    const auto johnson = johnson_simple_cycles(g, options);
    const auto rt = read_tarjan_simple_cycles(g, options);
    EXPECT_EQ(johnson.num_cycles, brute.num_cycles)
        << "max_len=" << max_len << " trial=" << trial;
    EXPECT_EQ(rt.num_cycles, brute.num_cycles)
        << "max_len=" << max_len << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, LengthConstraintTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7));

TEST(LengthConstraint, BoundedSubsetsOfUnbounded) {
  const Digraph g = complete_digraph(6);
  std::uint64_t previous = 0;
  for (int len = 2; len <= 6; ++len) {
    EnumOptions options;
    options.max_cycle_length = len;
    const auto bounded = johnson_simple_cycles(g, options).num_cycles;
    EXPECT_GE(bounded, previous);
    previous = bounded;
  }
  EXPECT_EQ(previous, johnson_simple_cycles(g).num_cycles);
}

// --- Work comparisons (Section 8's metric) --------------------------------------

TEST(WorkMetrics, ReadTarjanVisitsMoreEdgesThanJohnson) {
  // RT revisits blocked regions once per path extension (Figure 3b's dotted
  // path); Johnson visits them once. Averaged over random graphs RT >= J.
  SplitMix64 seeds(777);
  std::uint64_t johnson_edges = 0;
  std::uint64_t rt_edges = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Digraph g = erdos_renyi(12, 36, seeds.next());
    johnson_edges += johnson_simple_cycles(g).work.edges_visited;
    rt_edges += read_tarjan_simple_cycles(g).work.edges_visited;
  }
  EXPECT_GE(rt_edges, johnson_edges);
}

}  // namespace
}  // namespace parcycle
