// Migrated off the deprecated graph/io.hpp shim: the entry points live in
// io/edge_list.hpp (see also io_parser_test for the parallel path). The last
// test pins the shim itself so the compatibility include keeps compiling
// until it is removed.
#include "io/edge_list.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

// Compile-time check only: the deprecated shim must still forward to the new
// subsystem (and must not fire its deprecation note when explicitly allowed).
#define PARCYCLE_ALLOW_DEPRECATED_IO
#include "graph/io.hpp"
#undef PARCYCLE_ALLOW_DEPRECATED_IO

namespace parcycle {
namespace {

TEST(GraphIo, ParsesTimestampedEdgeList) {
  std::istringstream in(
      "# comment line\n"
      "0 1 100\n"
      "1 2 200\n"
      "\n"
      "2 0 300  # trailing comment\n");
  const TemporalGraph g = load_temporal_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.min_timestamp(), 100);
  EXPECT_EQ(g.max_timestamp(), 300);
}

TEST(GraphIo, MissingTimestampsDefaultToZero) {
  std::istringstream in("0 1\n1 0\n");
  const TemporalGraph g = load_temporal_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.max_timestamp(), 0);
}

TEST(GraphIo, MissingTimestampRejectedWhenRequired) {
  std::istringstream in("0 1\n");
  EdgeListOptions options;
  options.allow_missing_timestamps = false;
  EXPECT_THROW(load_temporal_edge_list(in, options), std::runtime_error);
}

TEST(GraphIo, MalformedLineThrows) {
  std::istringstream in("0 banana\n");
  EXPECT_THROW(load_temporal_edge_list(in), std::runtime_error);
}

TEST(GraphIo, NegativeVertexThrows) {
  std::istringstream in("-1 2 5\n");
  EXPECT_THROW(load_temporal_edge_list(in), std::runtime_error);
}

TEST(GraphIo, DropSelfLoopsOption) {
  std::istringstream in("0 0 1\n0 1 2\n");
  EdgeListOptions options;
  options.drop_self_loops = true;
  const TemporalGraph g = load_temporal_edge_list(in, options);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIo, SaveLoadRoundTrip) {
  std::istringstream in("0 1 10\n1 2 20\n2 0 30\n1 0 15\n");
  const TemporalGraph original = load_temporal_edge_list(in);

  std::ostringstream out;
  save_temporal_edge_list(original, out);
  std::istringstream back(out.str());
  const TemporalGraph reloaded = load_temporal_edge_list(back);

  ASSERT_EQ(reloaded.num_edges(), original.num_edges());
  ASSERT_EQ(reloaded.num_vertices(), original.num_vertices());
  const auto a = original.edges_by_time();
  const auto b = reloaded.edges_by_time();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].ts, b[i].ts);
  }
}

TEST(GraphIo, UnreadableFileThrows) {
  EXPECT_THROW(load_temporal_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace parcycle
