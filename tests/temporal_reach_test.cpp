// Temporal reachability / cycle-union preprocessing tests.
#include "temporal/cycle_union.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace parcycle {
namespace {

TemporalGraph chain_graph() {
  // 0 -> 1 -> 2 -> 3 -> 0 with ascending timestamps, plus a dead-end branch.
  GraphBuilder builder(6);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 20);
  builder.add_edge(2, 3, 30);
  builder.add_edge(3, 0, 40);
  builder.add_edge(2, 4, 25);  // 4 never reaches 0
  builder.add_edge(5, 2, 22);  // 2 not temporally reachable from 1 via 5
  return builder.build_temporal();
}

TEST(TemporalReach, FindsCycleUnion) {
  const TemporalGraph g = chain_graph();
  const TemporalEdge e0 = g.edge(0);  // 0 -> 1 @ 10
  ASSERT_EQ(e0.src, 0u);
  ASSERT_EQ(e0.dst, 1u);
  TemporalReachScratch reach;
  reach.init(g.num_vertices());
  ASSERT_TRUE(reach.compute(g, e0, /*hi=*/100));
  EXPECT_TRUE(reach.contains(1));
  EXPECT_TRUE(reach.contains(2));
  EXPECT_TRUE(reach.contains(3));
  EXPECT_FALSE(reach.contains(4));  // forward-reachable, never returns
  EXPECT_FALSE(reach.contains(5));  // not forward-reachable at all
}

TEST(TemporalReach, WindowCutsTheCycle) {
  const TemporalGraph g = chain_graph();
  const TemporalEdge e0 = g.edge(0);
  TemporalReachScratch reach;
  reach.init(g.num_vertices());
  // Window ends before the closing edge (ts 40).
  EXPECT_FALSE(reach.compute(g, e0, /*hi=*/39));
}

TEST(TemporalReach, StrictIncreaseRespected) {
  // 0 -> 1 @ 10, 1 -> 0 @ 10: equal timestamps cannot chain.
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 0, 10);
  const TemporalGraph g = builder.build_temporal();
  TemporalReachScratch reach;
  reach.init(2);
  EXPECT_FALSE(reach.compute(g, g.edge(0), 100));
}

TEST(TemporalReach, TwoHopCycle) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 0, 11);
  const TemporalGraph g = builder.build_temporal();
  TemporalReachScratch reach;
  reach.init(2);
  ASSERT_TRUE(reach.compute(g, g.edge(0), 100));
  EXPECT_TRUE(reach.contains(1));
}

TEST(TemporalReach, EarliestArrivalIsEarliest) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 20);
  builder.add_edge(1, 2, 30);  // later parallel edge
  builder.add_edge(2, 0, 40);
  const TemporalGraph g = builder.build_temporal();
  TemporalReachScratch reach;
  reach.init(3);
  ASSERT_TRUE(reach.compute(g, g.edge(0), 100));
  EXPECT_EQ(reach.earliest_arrival(2), 20);
}

TEST(TemporalReach, ScratchReusableAcrossStarts) {
  const TemporalGraph g = uniform_temporal(20, 100, 500, 5);
  TemporalReachScratch reach;
  reach.init(g.num_vertices());
  // Just exercise repeated computes; correctness is covered by the
  // equivalence tests (cycle-union on/off must agree).
  int successes = 0;
  for (const auto& e : g.edges_by_time()) {
    if (e.src != e.dst && reach.compute(g, e, e.ts + 200)) {
      successes += 1;
      EXPECT_TRUE(reach.contains(e.dst) || !reach.contains(e.dst));
    }
  }
  SUCCEED() << successes;
}

}  // namespace
}  // namespace parcycle
