#include "support/chase_lev_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace parcycle {
namespace {

TEST(ChaseLevDeque, PopFromEmptyReturnsNothing) {
  ChaseLevDeque<int> deque;
  EXPECT_FALSE(deque.pop().has_value());
  EXPECT_FALSE(deque.steal().has_value());
  EXPECT_TRUE(deque.empty());
}

TEST(ChaseLevDeque, OwnerPopIsLifo) {
  ChaseLevDeque<int> deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.pop().value(), 3);
  EXPECT_EQ(deque.pop().value(), 2);
  EXPECT_EQ(deque.pop().value(), 1);
  EXPECT_FALSE(deque.pop().has_value());
}

TEST(ChaseLevDeque, StealIsFifo) {
  ChaseLevDeque<int> deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.steal().value(), 1);
  EXPECT_EQ(deque.steal().value(), 2);
  EXPECT_EQ(deque.steal().value(), 3);
  EXPECT_FALSE(deque.steal().has_value());
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> deque(2);
  for (int i = 0; i < 1000; ++i) {
    deque.push(i);
  }
  EXPECT_EQ(deque.size(), 1000);
  for (int i = 999; i >= 0; --i) {
    EXPECT_EQ(deque.pop().value(), i);
  }
}

TEST(ChaseLevDeque, MixedOwnerAndThiefSequential) {
  ChaseLevDeque<int> deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  deque.push(4);
  EXPECT_EQ(deque.steal().value(), 1);   // oldest
  EXPECT_EQ(deque.pop().value(), 4);     // newest
  EXPECT_EQ(deque.steal().value(), 2);
  EXPECT_EQ(deque.pop().value(), 3);
  EXPECT_TRUE(deque.empty());
}

// Stress: one owner pushing/popping, several thieves stealing; every pushed
// item must be consumed exactly once.
TEST(ChaseLevDeque, ConcurrentStealStress) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque;
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !deque.empty()) {
        if (auto item = deque.steal()) {
          consumed_sum.fetch_add(static_cast<std::uint64_t>(*item),
                                 std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::uint64_t owner_sum = 0;
  int owner_count = 0;
  for (int i = 1; i <= kItems; ++i) {
    deque.push(i);
    if (i % 3 == 0) {
      if (auto item = deque.pop()) {
        owner_sum += static_cast<std::uint64_t>(*item);
        owner_count += 1;
      }
    }
  }
  // Drain the remainder as the owner too.
  while (auto item = deque.pop()) {
    owner_sum += static_cast<std::uint64_t>(*item);
    owner_count += 1;
  }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) {
    thief.join();
  }

  const std::uint64_t expected_sum =
      static_cast<std::uint64_t>(kItems) * (kItems + 1) / 2;
  EXPECT_EQ(owner_sum + consumed_sum.load(), expected_sum);
  EXPECT_EQ(owner_count + consumed_count.load(), kItems);
}

}  // namespace
}  // namespace parcycle
