// Sampling profiler + hardware counter groups: collapsed-stack export from
// injected raw samples, saturating-ring drop accounting (sample-line sum ==
// taken, always), disabled-profiler no-ops, live SIGPROF sampling over a
// real worker pool, timed /profilez-style captures, and honest degradation —
// under ThreadSanitizer the profiler must REFUSE to sample (TSan defers
// async signals) and say so, and a kernel that forbids perf_event_open must
// yield available()==false with a reason, never garbage counts. The suite
// carries the `parallel` label so the TSan job asserts the refusal branch
// explicitly rather than skipping it.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "support/scheduler.hpp"
#include "support/tsan.hpp"

namespace parcycle {
namespace {

// Parses collapsed text into (header line, [(stack, count)]) and checks the
// syntax contract scripts/profile_summary.py enforces.
struct Parsed {
  std::string header;
  std::vector<std::pair<std::string, std::uint64_t>> stacks;
  std::uint64_t total = 0;
};

Parsed parse_collapsed(const std::string& text) {
  Parsed out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(out.header.empty()) << "duplicate header: " << line;
      EXPECT_EQ(line.rfind("# parcycle-profile ", 0), 0u) << line;
      out.header = line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) {
      continue;
    }
    const std::string stack = line.substr(0, space);
    const std::uint64_t count =
        std::strtoull(line.c_str() + space + 1, nullptr, 10);
    EXPECT_GT(count, 0u) << line;
    EXPECT_FALSE(stack.empty()) << line;
    out.stacks.emplace_back(stack, count);
    out.total += count;
  }
  EXPECT_FALSE(out.header.empty()) << "missing header in:\n" << text;
  return out;
}

std::uint64_t header_field(const std::string& header, const std::string& key) {
  const std::size_t pos = header.find(key + "=");
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << header;
  return pos == std::string::npos
             ? 0
             : std::strtoull(header.c_str() + pos + key.size() + 1, nullptr,
                             10);
}

// Known dynamic symbols to inject as fake PCs: dladdr resolves function
// addresses from libc exactly, so the export must print their names.
using CFunc = void (*)();

TEST(StackProfiler, CollapsedFormatFromRawSamples) {
  StackProfiler prof(2, ProfilerOptions{});
  ASSERT_TRUE(prof.enabled());
  void* leaf = reinterpret_cast<void*>(reinterpret_cast<CFunc>(&std::abort));
  void* root = reinterpret_cast<void*>(reinterpret_cast<CFunc>(&std::exit));
  void* frames[2] = {leaf, root};  // leaf-first, as the signal handler stores
  prof.record_raw_sample(0, frames, 2);
  prof.record_raw_sample(0, frames, 2);
  void* other[1] = {root};
  prof.record_raw_sample(1, other, 1);

  EXPECT_EQ(prof.samples_taken(0), 2u);
  EXPECT_EQ(prof.samples_taken(1), 1u);
  EXPECT_EQ(prof.total_taken(), 3u);
  EXPECT_EQ(prof.total_dropped(), 0u);

  const std::string text = prof.collapsed();
  const Parsed parsed = parse_collapsed(text);
  EXPECT_EQ(parsed.total, 3u);
  EXPECT_EQ(header_field(parsed.header, "taken"), 3u);
  EXPECT_EQ(header_field(parsed.header, "dropped"), 0u);
  EXPECT_EQ(header_field(parsed.header, "workers"), 2u);
  // Aggregation: the two identical worker-0 samples collapse to one line
  // with count 2; worker 1 contributes the other line.
  ASSERT_EQ(parsed.stacks.size(), 2u);
  // Export renders root-first: the stack must start with the outer frame.
  bool saw_two_frame = false;
  for (const auto& [stack, count] : parsed.stacks) {
    if (count == 2) {
      saw_two_frame = true;
      EXPECT_NE(stack.find("exit"), std::string::npos) << stack;
      EXPECT_NE(stack.find("abort"), std::string::npos) << stack;
      EXPECT_LT(stack.find("exit"), stack.find("abort"))
          << "root must precede leaf: " << stack;
    }
  }
  EXPECT_TRUE(saw_two_frame);
}

TEST(StackProfiler, SaturatingRingKeepsSumEqualToTaken) {
  ProfilerOptions options;
  options.capacity_per_worker = 4;
  StackProfiler prof(1, options);
  void* frame = reinterpret_cast<void*>(reinterpret_cast<CFunc>(&std::abort));
  for (int i = 0; i < 10; ++i) {
    prof.record_raw_sample(0, &frame, 1);
  }
  // Saturating, not wrapping: beyond capacity samples count as dropped and
  // the stored total never exceeds capacity — so the exported sum can be
  // pinned against the taken counter exactly.
  EXPECT_EQ(prof.samples_taken(0), 4u);
  EXPECT_EQ(prof.samples_dropped(0), 6u);
  const Parsed parsed = parse_collapsed(prof.collapsed());
  EXPECT_EQ(parsed.total, prof.total_taken());
  EXPECT_EQ(header_field(parsed.header, "dropped"), 6u);
}

TEST(StackProfiler, DisabledProfilerIsInertAndRefusesStart) {
  StackProfiler prof(4, ProfilerOptions{}, /*enabled=*/false);
  EXPECT_FALSE(prof.enabled());
  void* frame = reinterpret_cast<void*>(reinterpret_cast<CFunc>(&std::abort));
  prof.record_raw_sample(0, &frame, 1);  // must be a no-op, not a crash
  EXPECT_EQ(prof.total_taken(), 0u);
  std::string error;
  EXPECT_FALSE(prof.start(&error));
  EXPECT_NE(error.find("disabled"), std::string::npos) << error;
  // Attach/detach hooks on a disabled profiler are harmless no-ops too.
  prof.on_worker_start(0);
  prof.on_worker_stop(0);
  const Parsed parsed = parse_collapsed(prof.collapsed());
  EXPECT_EQ(parsed.total, 0u);
  EXPECT_TRUE(parsed.stacks.empty());
}

TEST(StackProfiler, ClearResetsCountersAndStacks) {
  StackProfiler prof(1, ProfilerOptions{});
  void* frame = reinterpret_cast<void*>(reinterpret_cast<CFunc>(&std::abort));
  prof.record_raw_sample(0, &frame, 1);
  EXPECT_EQ(prof.total_taken(), 1u);
  prof.clear();
  EXPECT_EQ(prof.total_taken(), 0u);
  EXPECT_EQ(prof.total_dropped(), 0u);
  EXPECT_TRUE(parse_collapsed(prof.collapsed()).stacks.empty());
}

TEST(MetricsRegistry, ImportProfilerExportsPerWorkerCounters) {
  StackProfiler prof(2, ProfilerOptions{});
  void* frame = reinterpret_cast<void*>(reinterpret_cast<CFunc>(&std::abort));
  prof.record_raw_sample(1, &frame, 1);
  MetricsRegistry reg;
  reg.import_profiler(prof);
  EXPECT_EQ(
      reg.value_u64("parcycle_profile_samples_taken_total", "worker=\"0\"")
          .value_or(99),
      0u);
  EXPECT_EQ(
      reg.value_u64("parcycle_profile_samples_taken_total", "worker=\"1\"")
          .value_or(0),
      1u);
}

#if PARCYCLE_TSAN

// Under ThreadSanitizer the refusal is the contract: TSan defers async
// signal delivery to synchronization points, which breaks interrupted-PC
// sampling, so supported() must say no and start() must explain itself.
// Asserted explicitly — a skipped test could hide a profiler that silently
// arms timers under TSan and samples garbage.
TEST(StackProfiler, RefusesToSampleUnderThreadSanitizer) {
  EXPECT_FALSE(StackProfiler::supported());
  StackProfiler prof(2, ProfilerOptions{});
  std::string error;
  EXPECT_FALSE(prof.start(&error));
  EXPECT_NE(error.find("ThreadSanitizer"), std::string::npos) << error;
  EXPECT_FALSE(prof.sampling());
  // The raw-record path (format tests above) must keep working regardless.
  void* frame = reinterpret_cast<void*>(reinterpret_cast<CFunc>(&std::abort));
  prof.record_raw_sample(0, &frame, 1);
  EXPECT_EQ(prof.total_taken(), 1u);
}

#else  // !PARCYCLE_TSAN

TEST(StackProfiler, LiveCpuSamplingOverBusyPool) {
  ASSERT_TRUE(StackProfiler::supported());
  ProfilerOptions options;
  options.sample_hz = 997;  // fast so a short spin yields samples
  options.clock = ProfileClock::kThreadCpu;
  StackProfiler prof(2, options);
  std::string error;
  ASSERT_TRUE(prof.start(&error)) << error;
  SchedulerOptions sched_options;
  sched_options.thread_observer = &prof;
  Scheduler::with_pool(2, sched_options, [&](Scheduler& sched) {
    TaskGroup group(sched);
    for (int t = 0; t < 2; ++t) {
      group.spawn([] {
        // ~200ms of pure CPU per task: at 997Hz thread-CPU sampling the
        // two workers take hundreds of samples; >= 1 keeps slow/loaded CI
        // machines green.
        volatile std::uint64_t sink = 0;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(200);
        while (std::chrono::steady_clock::now() < deadline) {
          for (int i = 0; i < 4096; ++i) {
            sink = sink + static_cast<std::uint64_t>(i) * 2654435761u;
          }
        }
      });
    }
    group.wait();
  });
  prof.stop();
  EXPECT_GE(prof.total_taken(), 1u);
  const Parsed parsed = parse_collapsed(prof.collapsed());
  EXPECT_EQ(parsed.total, prof.total_taken());
}

TEST(StackProfiler, WallClockSamplingSeesIdlePool) {
  ASSERT_TRUE(StackProfiler::supported());
  ProfilerOptions options;
  options.sample_hz = 499;
  options.clock = ProfileClock::kWall;
  StackProfiler prof(2, options);
  std::string error;
  ASSERT_TRUE(prof.start(&error)) << error;
  SchedulerOptions sched_options;
  sched_options.thread_observer = &prof;
  Scheduler::with_pool(2, sched_options, [&](Scheduler&) {
    // No tasks at all: the workers park. CPU-clock timers would never fire
    // here; wall-clock sampling is exactly the /profilez-on-an-idle-service
    // mode and must still take samples (of the wait stacks).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  });
  prof.stop();
  EXPECT_GE(prof.total_taken(), 1u);
  const Parsed parsed = parse_collapsed(prof.collapsed());
  EXPECT_EQ(parsed.total, prof.total_taken());
}

TEST(StackProfiler, TimedCaptureRestartsWindowAndKeepsConsistency) {
  ASSERT_TRUE(StackProfiler::supported());
  ProfilerOptions options;
  options.sample_hz = 499;
  options.clock = ProfileClock::kWall;
  StackProfiler prof(1, options);
  SchedulerOptions sched_options;
  sched_options.thread_observer = &prof;
  Scheduler::with_pool(1, sched_options, [&](Scheduler&) {
    const std::string text = prof.timed_capture(0.25);
    const Parsed parsed = parse_collapsed(text);
    EXPECT_GE(parsed.total, 1u);
    EXPECT_EQ(parsed.total, header_field(parsed.header, "taken"));
    // timed_capture on an idle profiler leaves it idle afterwards.
    EXPECT_FALSE(prof.sampling());
  });
}

#endif  // PARCYCLE_TSAN

// perf_event groups must be honest about availability: either the group
// opened and the counts are plausible, or available() is false with a
// human-readable reason (perf_event_paranoid, seccomp, VM without a PMU).
// Both branches are legitimate in CI — what is asserted is the contract,
// not the kernel's permission policy.
TEST(PerfCounterGroups, AvailabilityIsHonest) {
  PerfCounterGroups perf(1);
  ASSERT_TRUE(perf.enabled());
  perf.on_worker_start(0);  // attach the calling thread as worker 0
  if (perf.available()) {
    // Burn some cycles so the group has something to count.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 2000000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull;
    }
    const PerfCounts counts = perf.counts(0);
    EXPECT_TRUE(counts.available);
    EXPECT_GT(counts.cycles, 0u);
    EXPECT_GT(counts.instructions, 0u);
    EXPECT_GE(counts.ipc(), 0.0);
  } else {
    EXPECT_FALSE(perf.unavailable_reason().empty());
    EXPECT_FALSE(perf.counts(0).available);
  }
  perf.on_worker_stop(0);
  // After detach the final snapshot (or unavailability) persists.
  EXPECT_EQ(perf.counts(0).available, perf.available());
}

TEST(PerfCounterGroups, DisabledGroupsAreInert) {
  PerfCounterGroups perf(2, /*enabled=*/false);
  EXPECT_FALSE(perf.enabled());
  perf.on_worker_start(0);
  perf.on_worker_stop(0);
  EXPECT_FALSE(perf.available());
  EXPECT_FALSE(perf.counts(0).available);
  MetricsRegistry reg;
  reg.import_perf(perf);
  EXPECT_EQ(reg.value_u64("parcycle_perf_available").value_or(99), 0u);
}

TEST(PerfCounterGroups, ImportPerfAlwaysExportsAvailabilityGauge) {
  PerfCounterGroups perf(1);
  perf.on_worker_start(0);
  MetricsRegistry reg;
  reg.import_perf(perf);
  const std::uint64_t expected = perf.available() ? 1 : 0;
  EXPECT_EQ(reg.value_u64("parcycle_perf_available").value_or(99), expected);
  if (perf.available()) {
    EXPECT_TRUE(
        reg.value_u64("parcycle_perf_cycles_total", "worker=\"0\"")
            .has_value());
  }
  perf.on_worker_stop(0);
}

}  // namespace
}  // namespace parcycle
