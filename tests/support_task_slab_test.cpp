// TaskSlab unit tests plus scheduler-level slab integration: the
// zero-allocation steady state, the growth path, and cross-worker
// free/reallocate traffic (spawn on worker A, execute+free on B,
// reallocate on A).
#include "support/task_slab.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "support/scheduler.hpp"

namespace parcycle {
namespace {

TEST(TaskSlab, LocalReleaseRecyclesLifo) {
  TaskSlab slab;
  void* first = slab.acquire();
  std::memset(first, 0xab, kTaskSlabBlockSize);
  slab.release_local(first);
  // LIFO freelist: the freshly freed (cache-hot) block comes back first.
  EXPECT_EQ(slab.acquire(), first);
  slab.release_local(first);

  const TaskSlabStats stats = slab.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.local_releases, 2u);
  EXPECT_EQ(stats.chunks_allocated, 1u);
  EXPECT_EQ(stats.remote_releases, 0u);
}

TEST(TaskSlab, BlocksAreAlignedAndDistinct) {
  TaskSlab slab;
  std::set<void*> blocks;
  for (std::size_t i = 0; i < 2 * kTaskSlabChunkBlocks; ++i) {
    void* block = slab.acquire();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % kTaskSlabBlockAlign,
              0u);
    EXPECT_TRUE(blocks.insert(block).second) << "block handed out twice";
  }
  EXPECT_EQ(slab.stats().chunks_allocated, 2u);
  for (void* block : blocks) {
    slab.release_local(block);
  }
  // Everything recycles: a second sweep of the same size allocates no chunk.
  for (std::size_t i = 0; i < 2 * kTaskSlabChunkBlocks; ++i) {
    slab.release_local(slab.acquire());
  }
  EXPECT_EQ(slab.stats().chunks_allocated, 2u);
}

TEST(TaskSlab, RemoteReturnsAreDrainedBeforeGrowing) {
  TaskSlab slab;
  std::vector<void*> blocks;
  for (std::size_t i = 0; i < kTaskSlabChunkBlocks; ++i) {
    blocks.push_back(slab.acquire());
  }
  // Free every block through the cross-worker path (any thread may push,
  // including the owner).
  for (void* block : blocks) {
    slab.release_remote(block);
  }
  // The freelist is empty, so the next acquire must drain the return list
  // instead of allocating a second chunk.
  std::set<void*> reacquired;
  for (std::size_t i = 0; i < kTaskSlabChunkBlocks; ++i) {
    reacquired.insert(slab.acquire());
  }
  EXPECT_EQ(reacquired.size(), blocks.size());

  const TaskSlabStats stats = slab.stats();
  EXPECT_EQ(stats.chunks_allocated, 1u);
  EXPECT_EQ(stats.remote_releases, kTaskSlabChunkBlocks);
  EXPECT_EQ(stats.remote_drains, kTaskSlabChunkBlocks);
}

TEST(TaskSlab, ConcurrentRemotePushesAllArrive) {
  TaskSlab slab;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 256;
  std::vector<std::vector<void*>> handed(kThreads);
  for (auto& lot : handed) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      lot.push_back(slab.acquire());
    }
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&slab, lot = std::move(handed[t])] {
      for (void* block : lot) {
        slab.release_remote(block);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // The owner gets every block back without growing.
  std::set<void*> reacquired;
  for (std::size_t i = 0; i < kThreads * kPerThread; ++i) {
    reacquired.insert(slab.acquire());
  }
  EXPECT_EQ(reacquired.size(), kThreads * kPerThread);
  const TaskSlabStats stats = slab.stats();
  EXPECT_EQ(stats.remote_releases, kThreads * kPerThread);
  EXPECT_EQ(stats.chunks_allocated,
            (kThreads * kPerThread + kTaskSlabChunkBlocks - 1) /
                kTaskSlabChunkBlocks);
}

TaskSlabStats total_slab_stats(const Scheduler& sched) {
  TaskSlabStats total;
  for (const auto& stats : sched.slab_stats()) {
    total += stats;
  }
  return total;
}

std::uint64_t total_heap_tasks(const Scheduler& sched) {
  std::uint64_t total = 0;
  for (const auto& stats : sched.worker_stats()) {
    total += stats.tasks_heap_allocated;
  }
  return total;
}

// The acceptance property of the slab rework: once warm, the spawn path
// allocates nothing. Single worker makes the schedule deterministic — every
// wave's blocks return to the freelist before the next wave starts.
TEST(SchedulerSlab, SteadyStateSpawnsAllocateNothing) {
  constexpr int kTasksPerWave = 600;  // > 2 chunks of blocks
  Scheduler sched(1);
  std::atomic<int> counter{0};
  const auto wave = [&] {
    TaskGroup group(sched);
    for (int i = 0; i < kTasksPerWave; ++i) {
      group.spawn([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
  };
  wave();
  const std::uint64_t warm_chunks = total_slab_stats(sched).chunks_allocated;
  EXPECT_GE(warm_chunks, 1u);

  constexpr int kWaves = 50;
  for (int i = 0; i < kWaves; ++i) {
    wave();
  }
  EXPECT_EQ(counter.load(), (kWaves + 1) * kTasksPerWave);

  const TaskSlabStats stats = total_slab_stats(sched);
  EXPECT_EQ(stats.chunks_allocated, warm_chunks)
      << "steady-state spawning hit the slab growth path";
  EXPECT_EQ(stats.acquires,
            static_cast<std::uint64_t>((kWaves + 1) * kTasksPerWave));
  EXPECT_EQ(total_heap_tasks(sched), 0u);
  // Every block went back: nothing leaked into the void.
  EXPECT_EQ(stats.acquires, stats.local_releases + stats.remote_releases);
}

// Cross-worker lifecycle stress: all tasks are spawned (= allocated) on
// worker 0, held open by a latch until at least one of them is observed
// executing on another worker, and freed wherever they finish. Blocks freed
// remotely must flow back to worker 0's slab through the return list and be
// reusable by later rounds.
TEST(SchedulerSlab, CrossWorkerFreeStress) {
  constexpr int kTasksPerRound = 600;
  constexpr int kRounds = 10;
  Scheduler sched(4);
  std::atomic<int> executed{0};
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<bool> latch{false};
    std::atomic<int> remote_executions{0};
    TaskGroup group(sched);
    for (int i = 0; i < kTasksPerRound; ++i) {
      group.spawn([&latch, &remote_executions, &executed] {
        if (Scheduler::current_worker_id() != 0) {
          remote_executions.fetch_add(1, std::memory_order_relaxed);
        }
        while (!latch.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Hold the latch until a steal is guaranteed, so every round produces
    // cross-worker frees.
    while (remote_executions.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    latch.store(true, std::memory_order_release);
    group.wait();
  }
  EXPECT_EQ(executed.load(), kRounds * kTasksPerRound);

  const auto worker = sched.worker_stats();
  std::uint64_t stolen = 0;
  for (const auto& stats : worker) {
    stolen += stats.tasks_stolen;
  }
  EXPECT_GT(stolen, 0u);
  EXPECT_EQ(total_heap_tasks(sched), 0u);

  // All tasks were spawned on worker 0, so all blocks came from its slab —
  // and the stolen ones came back through the MPSC return list.
  const auto slabs = sched.slab_stats();
  EXPECT_EQ(slabs[0].acquires,
            static_cast<std::uint64_t>(kRounds * kTasksPerRound));
  EXPECT_GT(slabs[0].remote_releases, 0u);
  for (std::size_t w = 1; w < slabs.size(); ++w) {
    EXPECT_EQ(slabs[w].acquires, 0u) << "worker " << w;
  }
  EXPECT_EQ(slabs[0].acquires,
            slabs[0].local_releases + slabs[0].remote_releases);
  // Reuse across rounds keeps the footprint near one round's peak; without
  // recycling this would be ~kRounds times larger.
  const std::uint64_t peak_chunks =
      (kTasksPerRound + kTaskSlabChunkBlocks - 1) / kTaskSlabChunkBlocks;
  EXPECT_LE(slabs[0].chunks_allocated, 2 * peak_chunks + 1);
}

// Nested fork-join with stealing: blocks are allocated on whichever worker
// spawns, freed on whichever executes — the general many-to-many traffic the
// MPSC return lists must survive (this is the suite's TSan target).
TEST(SchedulerSlab, NestedSpawnStressRecyclesEverything) {
  Scheduler sched(4);
  std::atomic<int> leaves{0};
  for (int round = 0; round < 20; ++round) {
    TaskGroup outer(sched);
    for (int i = 0; i < 64; ++i) {
      outer.spawn([&leaves] {
        TaskGroup inner;
        for (int j = 0; j < 32; ++j) {
          inner.spawn(
              [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
        }
        inner.wait();
      });
    }
    outer.wait();
  }
  EXPECT_EQ(leaves.load(), 20 * 64 * 32);

  const TaskSlabStats stats = total_slab_stats(sched);
  EXPECT_EQ(stats.acquires, static_cast<std::uint64_t>(20 * (64 + 64 * 32)));
  EXPECT_EQ(stats.acquires, stats.local_releases + stats.remote_releases);
  EXPECT_EQ(total_heap_tasks(sched), 0u);
}

}  // namespace
}  // namespace parcycle
