// Unit tests for the closing-times state (2SCENT machinery): ct lattice
// moves, unblock-list cascades, bundles, and the copy-on-steal repair.
#include "temporal/temporal_state.hpp"

#include <gtest/gtest.h>

namespace parcycle {
namespace {

TEST(ClosingTimeState, InitiallyEverythingOpen) {
  ClosingTimeState st(8);
  EXPECT_TRUE(st.arrival_open(3, 1000000));
  EXPECT_EQ(st.closing_time(3), ClosingTimeState::kNever);
}

TEST(ClosingTimeState, LoweringBlocksLaterArrivals) {
  ClosingTimeState st(8);
  st.lower_closing_time(3, 100);
  EXPECT_FALSE(st.arrival_open(3, 100));  // arrival == ct blocked
  EXPECT_FALSE(st.arrival_open(3, 150));
  EXPECT_TRUE(st.arrival_open(3, 99));
  // Lowering never raises.
  st.lower_closing_time(3, 200);
  EXPECT_EQ(st.closing_time(3), 100);
}

TEST(ClosingTimeState, RaiseCascadesThroughUnblockLists) {
  ClosingTimeState st(8);
  // 1 failed; it wanted edge (1 -> 2 @ 50). 0 failed; it wanted (0 -> 1 @ 40).
  st.lower_closing_time(1, 30);
  st.register_unblock(2, 1, 50);
  st.lower_closing_time(0, 20);
  st.register_unblock(1, 0, 40);
  // In the algorithm a vertex holding unblock entries always has a lowered
  // closing time (it was explored), so establish that precondition.
  st.lower_closing_time(2, 35);
  // Raising ct(2) above 50 re-enables 1 for arrivals < 50, which in turn
  // re-enables 0 for arrivals < 40.
  st.raise_closing_time(2, 60);
  EXPECT_EQ(st.closing_time(1), 50);
  EXPECT_EQ(st.closing_time(0), 40);
}

TEST(ClosingTimeState, RaiseBelowEntryThresholdDoesNotFire) {
  ClosingTimeState st(8);
  st.lower_closing_time(1, 30);
  st.register_unblock(2, 1, 50);
  st.lower_closing_time(2, 35);
  st.raise_closing_time(2, 45);  // still <= 50: the edge stays unusable
  EXPECT_EQ(st.closing_time(1), 30);
  // A later, higher raise still finds the entry.
  st.raise_closing_time(2, 55);
  EXPECT_EQ(st.closing_time(1), 50);
}

TEST(ClosingTimeState, RegisterDeduplicates) {
  ClosingTimeState st(8);
  st.lower_closing_time(1, 10);
  st.register_unblock(2, 1, 50);
  st.register_unblock(2, 1, 50);
  st.lower_closing_time(2, 35);
  st.raise_closing_time(2, 60);
  EXPECT_EQ(st.closing_time(1), 50);
}

TEST(ClosingTimeState, HopsCarryBundles) {
  ClosingTimeState st(8);
  ClosingTimeState::Hop& h0 = st.push(3);
  h0.edges.push_back(BundleEdge{10, 0, 1});
  h0.edges.push_back(BundleEdge{20, 1, 2});
  EXPECT_EQ(st.frontier(), 3u);
  EXPECT_TRUE(st.on_path(3));
  EXPECT_EQ(st.hop(0).edges.size(), 2u);
  st.pop();
  EXPECT_FALSE(st.on_path(3));
  // Re-pushing hands back a cleared hop.
  ClosingTimeState::Hop& again = st.push(3);
  EXPECT_TRUE(again.edges.empty());
  st.pop();
}

TEST(ClosingTimeState, CopyFromReplicates) {
  ClosingTimeState victim(8);
  ClosingTimeState::Hop& hop = victim.push(1);
  hop.edges.push_back(BundleEdge{5, 7, 3});
  victim.lower_closing_time(4, 44);
  victim.register_unblock(5, 4, 60);
  victim.lower_closing_time(5, 30);

  ClosingTimeState thief(8);
  thief.copy_from(victim);
  EXPECT_EQ(thief.path_length(), 1u);
  EXPECT_EQ(thief.hop(0).edges.at(0).instances, 3u);
  EXPECT_EQ(thief.closing_time(4), 44);
  thief.raise_closing_time(5, 70);
  EXPECT_EQ(thief.closing_time(4), 60);
  EXPECT_EQ(victim.closing_time(4), 44) << "copies are independent";
}

TEST(ClosingTimeState, RepairFullyReopensPoppedVertices) {
  ClosingTimeState victim(8);
  victim.push(0);
  victim.push(1);
  victim.push(2);
  victim.lower_closing_time(2, 30);
  // 6 waits on the popped vertex 2; 7 waits on the kept vertex 0.
  victim.lower_closing_time(6, 10);
  victim.register_unblock(2, 6, 25);
  victim.lower_closing_time(7, 10);
  victim.register_unblock(0, 7, 25);

  ClosingTimeState thief(8);
  thief.copy_from(victim);
  thief.repair_to_prefix(1);
  EXPECT_EQ(thief.path_length(), 1u);
  EXPECT_EQ(thief.closing_time(2), ClosingTimeState::kNever);
  EXPECT_EQ(thief.closing_time(6), 25) << "cascade fired for popped vertex";
  EXPECT_EQ(thief.closing_time(7), 10) << "kept vertex's waiter unchanged";
}

TEST(ClosingTimeState, ResetRestoresPristine) {
  ClosingTimeState st(8);
  st.push(0);
  st.lower_closing_time(3, 5);
  st.register_unblock(4, 3, 9);
  st.reset();
  EXPECT_EQ(st.path_length(), 0u);
  EXPECT_EQ(st.closing_time(3), ClosingTimeState::kNever);
  st.raise_closing_time(4, 100);
  EXPECT_EQ(st.closing_time(3), ClosingTimeState::kNever) << "no stale entry";
}

TEST(BundleMath, InstancesBeforeIsPrefixSum) {
  ClosingTimeState st(4);
  ClosingTimeState::Hop& hop = st.push(0);
  hop.edges = {{10, 0, 2}, {20, 1, 3}, {30, 2, 5}};
  // Defined in temporal_johnson_impl.hpp but exercised via the public
  // algorithms; here we check the hop layout it depends on: ascending ts.
  EXPECT_LT(hop.edges[0].ts, hop.edges[1].ts);
  st.pop();
}

}  // namespace
}  // namespace parcycle
