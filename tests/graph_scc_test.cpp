#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "support/dynamic_bitset.hpp"
#include "support/prng.hpp"

namespace parcycle {
namespace {

// Reference oracle: u and v are in the same SCC iff both reach each other.
// O(n * (n + e)) BFS-based, only for small test graphs.
std::vector<DynamicBitset> reachability_matrix(const Digraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<DynamicBitset> reach(n, DynamicBitset(n));
  for (VertexId s = 0; s < n; ++s) {
    std::vector<VertexId> queue = {s};
    reach[s].set(s);
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      for (const VertexId w : g.out_neighbors(queue[qi])) {
        if (!reach[s].test(w)) {
          reach[s].set(w);
          queue.push_back(w);
        }
      }
    }
  }
  return reach;
}

void expect_matches_oracle(const Digraph& g) {
  const SccResult scc = strongly_connected_components(g);
  const auto reach = reachability_matrix(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const bool same = reach[u].test(v) && reach[v].test(u);
      EXPECT_EQ(scc.same_component(u, v), same)
          << "vertices " << u << ", " << v;
    }
  }
}

TEST(Scc, SingleRing) {
  const SccResult scc = strongly_connected_components(directed_ring(5));
  EXPECT_EQ(scc.num_components, 1u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(scc.component[v], 0u);
  }
}

TEST(Scc, DagHasSingletonComponents) {
  const Digraph g = random_dag(20, 0.3, 99);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 20u);
}

TEST(Scc, TwoRingsJoinedByBridge) {
  // Ring A: 0-1-2, Ring B: 3-4-5, bridge 2 -> 3.
  Digraph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_TRUE(scc.same_component(0, 2));
  EXPECT_TRUE(scc.same_component(3, 5));
  EXPECT_FALSE(scc.same_component(0, 3));
  // Tarjan's numbering is reverse topological: the sink component (B) pops
  // first and must get the smaller id.
  EXPECT_LT(scc.component[3], scc.component[0]);
}

TEST(Scc, ComponentSizes) {
  Digraph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  const SccResult scc = strongly_connected_components(g);
  auto sizes = component_sizes(scc);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3}));
}

TEST(Scc, FilteredSubgraph) {
  // Full graph is one SCC (a 4-ring); excluding vertex 0 breaks it apart.
  Digraph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const SccResult scc = strongly_connected_components(
      g, [](VertexId v) { return v != 0; });
  EXPECT_EQ(scc.component[0], kInvalidVertex);
  EXPECT_EQ(scc.num_components, 3u);
  EXPECT_FALSE(scc.same_component(1, 2));
}

TEST(Scc, FilteredByMinimumVertex) {
  // The induced-subgraph pattern Johnson's algorithm uses.
  const Digraph g = complete_digraph(5);
  for (VertexId s = 0; s < 5; ++s) {
    const SccResult scc = strongly_connected_components(
        g, [s](VertexId v) { return v >= s; });
    EXPECT_EQ(scc.num_components, 1u) << "start " << s;
    for (VertexId v = s; v < 5; ++v) {
      EXPECT_TRUE(scc.same_component(s, v));
    }
    for (VertexId v = 0; v < s; ++v) {
      EXPECT_EQ(scc.component[v], kInvalidVertex);
    }
  }
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  Digraph g(3, {{0, 0}, {0, 1}, {1, 2}});
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 3u);
}

TEST(Scc, MatchesOracleOnRandomGraphs) {
  SplitMix64 seeds(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId n = 15 + static_cast<VertexId>(trial);
    const auto m = static_cast<std::size_t>(2.0 * n);
    const Digraph g = erdos_renyi(n, m, seeds.next());
    expect_matches_oracle(g);
  }
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  // 200k-vertex path exercises the iterative implementation.
  const VertexId n = 200000;
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(n);
  for (VertexId v = 0; v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
  }
  edges.emplace_back(n - 1, 0);  // close into one giant ring
  const Digraph g(n, std::move(edges));
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1u);
}

}  // namespace
}  // namespace parcycle
