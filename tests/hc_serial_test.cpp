// Serial hop-constrained BC-DFS correctness: brute-force ground truth on
// small graphs, and count/set equivalence against the budget-blocked
// Johnson / Read-Tarjan paths (which this suite is also the first direct
// ground-truth coverage for).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/hc_dfs.hpp"
#include "core/johnson.hpp"
#include "core/read_tarjan.hpp"
#include "graph/generators.hpp"
#include "support/prng.hpp"

namespace parcycle {
namespace {

// Unpruned DFS ground truth: all simple cycles of `g` with at most max_hops
// edges, rooted at their smallest vertex.
void brute_static_dfs(const Digraph& g, VertexId start, VertexId v,
                      std::int32_t rem, std::vector<char>& on_path,
                      std::uint64_t& count) {
  for (const VertexId w : g.out_neighbors(v)) {
    if (w < start) {
      continue;
    }
    if (w == start) {
      if (rem >= 1) {
        count += 1;
      }
    } else if (rem - 1 >= 1 && !on_path[w]) {
      on_path[w] = 1;
      brute_static_dfs(g, start, w, rem - 1, on_path, count);
      on_path[w] = 0;
    }
  }
}

std::uint64_t brute_static_count(const Digraph& g, int max_hops) {
  if (max_hops < 1) {
    return 0;
  }
  std::uint64_t count = 0;
  std::vector<char> on_path(g.num_vertices(), 0);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    on_path[s] = 1;
    brute_static_dfs(g, s, s, max_hops, on_path, count);
    on_path[s] = 0;
  }
  return count;
}

// Unpruned ground truth for the windowed task: cycles are edge-identified,
// rooted at their minimum (timestamp, id) edge, and must fit in the window.
void brute_windowed_dfs(const TemporalGraph& g, VertexId tail, EdgeId e0,
                        Timestamp t0, Timestamp hi, VertexId v,
                        std::int32_t rem, std::vector<char>& on_path,
                        std::uint64_t& count) {
  for (const auto& e : g.out_edges_in_window(v, t0, hi)) {
    if (e.id <= e0) {
      continue;
    }
    if (e.dst == tail) {
      if (rem >= 1) {
        count += 1;
      }
    } else if (rem - 1 >= 1 && !on_path[e.dst]) {
      on_path[e.dst] = 1;
      brute_windowed_dfs(g, tail, e0, t0, hi, e.dst, rem - 1, on_path, count);
      on_path[e.dst] = 0;
    }
  }
}

std::uint64_t brute_windowed_count(const TemporalGraph& g, Timestamp window,
                                   int max_hops) {
  if (max_hops < 1) {
    return 0;
  }
  std::uint64_t count = 0;
  std::vector<char> on_path(g.num_vertices(), 0);
  for (const auto& e0 : g.edges_by_time()) {
    if (e0.src == e0.dst) {
      count += 1;
      continue;
    }
    if (max_hops < 2) {
      continue;
    }
    on_path[e0.src] = 1;
    on_path[e0.dst] = 1;
    brute_windowed_dfs(g, e0.src, e0.id, e0.ts, e0.ts + window, e0.dst,
                       max_hops - 1, on_path, count);
    on_path[e0.src] = 0;
    on_path[e0.dst] = 0;
  }
  return count;
}

TemporalGraph windowed_test_graph(std::uint64_t seed) {
  ScaleFreeTemporalParams params;
  params.num_vertices = 30;
  params.num_edges = 220;
  params.time_span = 1000;
  params.attachment = 0.6;
  params.seed = seed;
  return scale_free_temporal(params);
}

// --- static, brute-force ground truth ----------------------------------------

TEST(HcSerial, BruteForceSmallRandomGraphs) {
  SplitMix64 seeds(0x5eed);
  for (int trial = 0; trial < 6; ++trial) {
    const VertexId n = 5 + trial % 4;  // 5..8 vertices
    const Digraph g = erdos_renyi(n, 3 * n, seeds.next());
    for (int k = 2; k <= 6; ++k) {
      const auto hc = hc_simple_cycles(g, k);
      EXPECT_EQ(hc.num_cycles, brute_static_count(g, k))
          << "trial=" << trial << " n=" << n << " k=" << k;
    }
  }
}

TEST(HcSerial, BruteForceStructuredGraphs) {
  const Digraph complete = complete_digraph(6);
  for (int k = 2; k <= 6; ++k) {
    EXPECT_EQ(hc_simple_cycles(complete, k).num_cycles,
              brute_static_count(complete, k))
        << "k=" << k;
  }
  const Digraph fig4a = figure4a_graph(8);
  for (int k = 2; k <= 6; ++k) {
    EXPECT_EQ(hc_simple_cycles(fig4a, k).num_cycles,
              brute_static_count(fig4a, k))
        << "k=" << k;
  }
}

TEST(HcSerial, DirectedRingAndDag) {
  const Digraph ring = directed_ring(7);
  EXPECT_EQ(hc_simple_cycles(ring, 6).num_cycles, 0u);
  EXPECT_EQ(hc_simple_cycles(ring, 7).num_cycles, 1u);
  EXPECT_EQ(hc_simple_cycles(ring, 20).num_cycles, 1u);

  const Digraph dag = random_dag(12, 0.4, 99);
  for (int k = 2; k <= 8; ++k) {
    EXPECT_EQ(hc_simple_cycles(dag, k).num_cycles, 0u);
  }
}

TEST(HcSerial, SelfLoopsAndDegenerateBounds) {
  // 0 -> 0 self-loop plus a 2-cycle 1 <-> 2.
  const Digraph g(3, {{0, 0}, {1, 2}, {2, 1}}, /*dedup=*/false);
  EXPECT_EQ(hc_simple_cycles(g, 0).num_cycles, 0u);
  EXPECT_EQ(hc_simple_cycles(g, 1).num_cycles, 1u);  // just the self-loop
  EXPECT_EQ(hc_simple_cycles(g, 2).num_cycles, 2u);
  EXPECT_EQ(hc_simple_cycles(Digraph(), 4).num_cycles, 0u);
}

// The hop bound prunes with the bounded reverse BFS, so a long ring costs
// O(1) edge visits per start instead of the budget-blocked Johnson's O(k).
TEST(HcSerial, DistancePruningBeatsBudgetBlocking) {
  const Digraph ring = directed_ring(50);
  EnumOptions budget;
  budget.max_cycle_length = 3;
  const auto johnson = johnson_simple_cycles(ring, budget);
  const auto hc = hc_simple_cycles(ring, 3);
  EXPECT_EQ(hc.num_cycles, johnson.num_cycles);
  EXPECT_LT(hc.work.edges_visited, johnson.work.edges_visited);
}

// --- static, budget-blocked Johnson / Read-Tarjan equivalence ----------------

TEST(HcSerial, MatchesBudgetBlockedStaticPaths) {
  SplitMix64 seeds(0xabcd);
  for (int trial = 0; trial < 3; ++trial) {
    const Digraph g = erdos_renyi(12, 40, seeds.next());
    for (int k = 2; k <= 6; ++k) {
      EnumOptions budget;
      budget.max_cycle_length = k;
      CollectingSink hc_sink;
      CollectingSink j_sink;
      CollectingSink rt_sink;
      const auto hc = hc_simple_cycles(g, k, {}, &hc_sink);
      const auto johnson = johnson_simple_cycles(g, budget, &j_sink);
      const auto rt = read_tarjan_simple_cycles(g, budget, &rt_sink);
      EXPECT_EQ(hc.num_cycles, johnson.num_cycles) << "k=" << k;
      EXPECT_EQ(hc.num_cycles, rt.num_cycles) << "k=" << k;
      EXPECT_EQ(hc_sink.sorted_cycles(), j_sink.sorted_cycles()) << "k=" << k;
      EXPECT_EQ(hc_sink.sorted_cycles(), rt_sink.sorted_cycles()) << "k=" << k;
    }
  }
}

TEST(HcSerial, UnboundedHopsMatchesUnboundedJohnson) {
  const Digraph g = erdos_renyi(10, 35, 7);
  const auto unbounded = johnson_simple_cycles(g);
  const auto hc = hc_simple_cycles(g, static_cast<int>(g.num_vertices()));
  EXPECT_EQ(hc.num_cycles, unbounded.num_cycles);
}

// --- windowed ----------------------------------------------------------------

TEST(HcSerial, WindowedBruteForce) {
  SplitMix64 seeds(0x717);
  for (int trial = 0; trial < 3; ++trial) {
    ScaleFreeTemporalParams params;
    params.num_vertices = 8;
    params.num_edges = 40;
    params.time_span = 100;
    params.seed = seeds.next();
    const TemporalGraph g = scale_free_temporal(params);
    for (const Timestamp window : {10, 40, 100}) {
      for (int k = 2; k <= 6; ++k) {
        EXPECT_EQ(hc_windowed_cycles(g, window, k).num_cycles,
                  brute_windowed_count(g, window, k))
            << "trial=" << trial << " window=" << window << " k=" << k;
      }
    }
  }
}

// This is also the first ground-truth coverage for max_cycle_length budget
// blocking in the windowed Johnson / Read-Tarjan searches.
TEST(HcSerial, MatchesBudgetBlockedWindowedPaths) {
  const TemporalGraph g = windowed_test_graph(23);
  for (const Timestamp window : {100, 200, 300}) {
    for (const int k : {2, 3, 4, 6}) {
      EnumOptions budget;
      budget.max_cycle_length = k;
      CollectingSink hc_sink;
      CollectingSink j_sink;
      CollectingSink rt_sink;
      const auto hc = hc_windowed_cycles(g, window, k, {}, &hc_sink);
      const auto johnson = johnson_windowed_cycles(g, window, budget, &j_sink);
      const auto rt =
          read_tarjan_windowed_cycles(g, window, budget, &rt_sink);
      EXPECT_EQ(hc.num_cycles, johnson.num_cycles)
          << "window=" << window << " k=" << k;
      EXPECT_EQ(hc.num_cycles, rt.num_cycles)
          << "window=" << window << " k=" << k;
      EXPECT_EQ(hc_sink.sorted_cycles(), j_sink.sorted_cycles())
          << "window=" << window << " k=" << k;
      EXPECT_EQ(hc_sink.sorted_cycles(), rt_sink.sorted_cycles())
          << "window=" << window << " k=" << k;
    }
  }
}

TEST(HcSerial, WindowedUnboundedHopsMatchesJohnson) {
  const TemporalGraph g = windowed_test_graph(51);
  const Timestamp window = 200;
  const auto unbounded = johnson_windowed_cycles(g, window);
  const auto hc = hc_windowed_cycles(
      g, window, static_cast<int>(g.num_vertices()) + 1);
  EXPECT_EQ(hc.num_cycles, unbounded.num_cycles);
}

}  // namespace
}  // namespace parcycle
